#include "fleet/router.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "fleet/merge.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet::fleet {
namespace {

using serve::ErrorCode;
using serve::ErrorResponse;
using serve::OkResponse;
using serve::QueryKind;
using serve::Request;

struct RouterCounters {
  obs::Counter& requests = obs::GetCounter("fleet.requests");
  obs::Counter& errors = obs::GetCounter("fleet.errors");
  obs::Counter& hedge_issued = obs::GetCounter("fleet.hedge.issued");
  obs::Counter& hedge_won = obs::GetCounter("fleet.hedge.won");
  obs::Counter& partial = obs::GetCounter("fleet.partial_answers");
  obs::Counter& unavailable = obs::GetCounter("fleet.unavailable");
  obs::Counter& retries = obs::GetCounter("fleet.retries");
};

RouterCounters& Counters() {
  static RouterCounters counters;
  return counters;
}

// Detecting an overloaded backend without parsing: ErrorResponse's
// sorted-key dump always starts with this exact prefix.
bool IsOverloadedResponse(const std::string& response) {
  static const std::string kPrefix = "{\"error\":{\"code\":\"overloaded\"";
  return response.compare(0, kPrefix.size(), kPrefix) == 0;
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

// The prober's own request line; shards answer it like any status query.
const char* const kProbeLine = "{\"id\":\"fleet-probe\",\"op\":\"status\"}";

}  // namespace

FleetRouter::FleetRouter(const RouterOptions& options)
    : options_(options),
      ring_(options.backends.size(), options.vnodes),
      pool_(options.backends, options.pool),
      hedge_(options.backends.size(), options.hedge),
      start_time_(std::chrono::steady_clock::now()) {}

FleetRouter::~FleetRouter() { Stop(); }

void FleetRouter::Start() {
  for (std::size_t shard = 0; shard < pool_.num_shards(); ++shard) ProbeShard(shard);
  obs::Log(obs::LogLevel::kInfo, "fleet", "router.started")
      .Kv("shards", static_cast<std::uint64_t>(pool_.num_shards()))
      .Kv("alive", static_cast<std::uint64_t>(pool_.NumAlive()));
  prober_ = std::thread([this] { ProbeLoop(); });
}

void FleetRouter::Stop() {
  bool was_stopped = stop_.exchange(true, std::memory_order_relaxed);
  prober_cv_.notify_all();
  if (!was_stopped && prober_.joinable()) prober_.join();
}

void FleetRouter::ProbeShard(std::size_t shard) {
  try {
    std::unique_ptr<BackendConn> conn = pool_.Checkout(shard);
    conn->SendLine(kProbeLine);
    auto deadline = std::chrono::steady_clock::now() +
                    std::min(options_.request_timeout, std::chrono::milliseconds(1000));
    std::optional<std::string> response = conn->ReadLine(deadline);
    if (!response) throw Error("probe timed out");
    pool_.MarkSuccess(shard);
    pool_.Checkin(shard, std::move(conn));
  } catch (const Error&) {
    pool_.MarkFailure(shard);
  }
}

void FleetRouter::ProbeLoop() {
  std::unique_lock<std::mutex> lock(prober_mu_);
  while (!stop_.load(std::memory_order_relaxed)) {
    prober_cv_.wait_for(lock, options_.probe_interval,
                        [this] { return stop_.load(std::memory_order_relaxed); });
    if (stop_.load(std::memory_order_relaxed)) return;
    lock.unlock();
    for (std::size_t shard = 0; shard < pool_.num_shards(); ++shard) {
      if (stop_.load(std::memory_order_relaxed)) return;
      ProbeShard(shard);
    }
    lock.lock();
  }
}

void FleetRouter::Handle(const std::string& line, std::function<void(std::string)> done,
                         std::chrono::steady_clock::time_point /*received_at*/) {
  Counters().requests.Increment();

  Json doc;
  try {
    doc = Json::Parse(line);
  } catch (const ParseError& e) {
    Counters().errors.Increment();
    done(ErrorResponse(Json(), ErrorCode::kBadRequest,
                       std::string("malformed JSON: ") + e.what()));
    return;
  }
  Json id = doc.type() == Json::Type::kObject ? doc.Get("id") : Json();

  Request request;
  try {
    request = serve::RequestFromJson(doc);
  } catch (const serve::ProtocolError& e) {
    Counters().errors.Increment();
    done(ErrorResponse(id, e.code(), e.what()));
    return;
  }

  std::string response;
  try {
    response = Route(request, id, line);
  } catch (const serve::ProtocolError& e) {
    Counters().errors.Increment();
    if (e.code() == ErrorCode::kUnavailable) Counters().unavailable.Increment();
    response = ErrorResponse(id, e.code(), e.what());
  } catch (const Error& e) {
    Counters().errors.Increment();
    obs::Log(obs::LogLevel::kError, "fleet", "router.internal_error").Kv("error", e.what());
    response = ErrorResponse(id, ErrorCode::kInternal, e.what());
  }
  done(std::move(response));
}

std::string FleetRouter::HandleSync(const std::string& line) {
  std::string response;
  Handle(
      line, [&response](std::string r) { response = std::move(r); },
      std::chrono::steady_clock::now());
  return response;
}

std::string FleetRouter::Route(const Request& request, const Json& id,
                               const std::string& line) {
  switch (request.kind) {
    case QueryKind::kReach:
    case QueryKind::kReliance:
      return ForwardCompute(request.origin, line);
    case QueryKind::kLeak:
      return ForwardCompute(request.victim, line);
    case QueryKind::kLeakDist:
      return ForwardStore(request.victim, line);
    case QueryKind::kHegemony:
    case QueryKind::kFailure:
      return ForwardStore(request.origin, line);
    case QueryKind::kTop:
      return ScatterTop(id, line);
    case QueryKind::kStatus:
      return FleetStatus(id);
    case QueryKind::kMetrics:
      return OkResponse(id, LocalMetrics(request), false);
    case QueryKind::kDebug:
      return OkResponse(id, LocalDebug(request), false);
  }
  throw serve::ProtocolError(ErrorCode::kInternal, "unreachable op");
}

std::optional<std::string> FleetRouter::RoundTrip(std::size_t shard,
                                                  const std::string& line,
                                                  bool hedgeable,
                                                  std::uint32_t hedge_key) {
  auto overall_deadline = std::chrono::steady_clock::now() + options_.request_timeout;
  std::unique_ptr<BackendConn> conn;
  try {
    conn = pool_.Checkout(shard);
    conn->SendLine(line);
  } catch (const Error&) {
    pool_.MarkFailure(shard);
    pool_.DropIdle(shard);
    return std::nullopt;
  }
  auto sent_at = std::chrono::steady_clock::now();

  if (hedgeable && options_.hedging) {
    auto hedge_at = sent_at + std::chrono::microseconds(static_cast<std::int64_t>(
                                  hedge_.DelayMsFor(shard) * 1000.0));
    std::optional<std::string> response;
    try {
      response = conn->ReadLine(std::min(hedge_at, overall_deadline));
    } catch (const Error&) {
      pool_.MarkFailure(shard);
      pool_.DropIdle(shard);
      return std::nullopt;
    }
    if (!response && std::chrono::steady_clock::now() < overall_deadline) {
      std::size_t neighbor =
          ring_.NextLiveDistinct(hedge_key, shard, pool_.AliveMask());
      if (neighbor != Ring::npos) {
        Counters().hedge_issued.Increment();
        std::unique_ptr<BackendConn> hedge_conn;
        try {
          hedge_conn = pool_.Checkout(neighbor);
          hedge_conn->SendLine(line);
        } catch (const Error&) {
          pool_.MarkFailure(neighbor);
          hedge_conn.reset();
        }
        if (hedge_conn != nullptr) {
          auto hedge_sent_at = std::chrono::steady_clock::now();
          // First complete line on either connection wins; the loser is
          // closed unread — checking it back in with a response in flight
          // would desynchronize the pool.
          bool primary_open = true;
          bool hedge_open = true;
          while (std::chrono::steady_clock::now() < overall_deadline &&
                 (primary_open || hedge_open)) {
            if (primary_open) {
              if (auto l = conn->TakeLine()) {
                hedge_.Observe(shard, MillisSince(sent_at));
                pool_.MarkSuccess(shard);
                pool_.Checkin(shard, std::move(conn));
                return l;
              }
            }
            if (hedge_open) {
              if (auto l = hedge_conn->TakeLine()) {
                Counters().hedge_won.Increment();
                hedge_.Observe(neighbor, MillisSince(hedge_sent_at));
                pool_.MarkSuccess(neighbor);
                pool_.Checkin(neighbor, std::move(hedge_conn));
                return l;
              }
            }
            pollfd pfds[2];
            nfds_t nfds = 0;
            if (primary_open) pfds[nfds++] = pollfd{conn->fd(), POLLIN, 0};
            if (hedge_open) pfds[nfds++] = pollfd{hedge_conn->fd(), POLLIN, 0};
            auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                overall_deadline - std::chrono::steady_clock::now());
            int timeout = static_cast<int>(
                std::clamp<std::int64_t>(left.count(), 0, 1000));
            if (::poll(pfds, nfds, timeout) < 0 && errno != EINTR) break;
            if (primary_open) {
              try {
                conn->ReadAvailable();
              } catch (const Error&) {
                pool_.MarkFailure(shard);
                primary_open = false;
              }
            }
            if (hedge_open) {
              try {
                hedge_conn->ReadAvailable();
              } catch (const Error&) {
                pool_.MarkFailure(neighbor);
                hedge_open = false;
              }
            }
          }
          if (!primary_open && !hedge_open) return std::nullopt;
          pool_.MarkFailure(shard);  // overall deadline with no response
          return std::nullopt;
        }
      }
    } else if (response) {
      hedge_.Observe(shard, MillisSince(sent_at));
      pool_.MarkSuccess(shard);
      pool_.Checkin(shard, std::move(conn));
      return response;
    }
  }

  std::optional<std::string> response;
  try {
    response = conn->ReadLine(overall_deadline);
  } catch (const Error&) {
    pool_.MarkFailure(shard);
    pool_.DropIdle(shard);
    return std::nullopt;
  }
  if (!response) {
    pool_.MarkFailure(shard);
    return std::nullopt;
  }
  hedge_.Observe(shard, MillisSince(sent_at));
  pool_.MarkSuccess(shard);
  pool_.Checkin(shard, std::move(conn));
  return response;
}

std::string FleetRouter::ForwardCompute(std::uint32_t key_asn,
                                        const std::string& line) {
  std::vector<bool> untried(pool_.num_shards(), true);
  std::string overloaded_response;
  for (std::size_t attempt = 0; attempt < pool_.num_shards(); ++attempt) {
    std::vector<bool> eligible = pool_.AliveMask();
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      if (!untried[i]) eligible[i] = false;
    }
    std::size_t target = ring_.FirstLive(key_asn, eligible);
    if (target == Ring::npos) break;
    untried[target] = false;
    if (attempt > 0) Counters().retries.Increment();

    std::optional<std::string> response = RoundTrip(target, line, true, key_asn);
    if (!response) continue;  // transport failure; fail over along the ring
    if (IsOverloadedResponse(*response)) {
      // The shard shed this query at admission; give the next shard on the
      // ring one chance before relaying the pushback to the client.
      overloaded_response = std::move(*response);
      continue;
    }
    return *response;
  }
  if (!overloaded_response.empty()) return overloaded_response;
  throw serve::ProtocolError(
      ErrorCode::kUnavailable,
      StrFormat("no live shard could answer for AS%u (%zu of %zu shards alive)",
                key_asn, pool_.NumAlive(), pool_.num_shards()));
}

std::string FleetRouter::ForwardStore(std::uint32_t key_asn,
                                      const std::string& line) {
  std::size_t owner = ring_.Owner(key_asn);
  if (!pool_.alive(owner)) {
    throw serve::ProtocolError(
        ErrorCode::kUnavailable,
        StrFormat("shard %zu (%s) owns AS%u and is down; its slice of the store "
                  "is unavailable until it rejoins the ring",
                  owner, pool_.address(owner).ToString().c_str(), key_asn));
  }
  // Store lookups are microseconds on the shard; the only retryable outcome
  // is admission pushback, which a short backoff rides out.
  for (std::size_t attempt = 0; attempt < 3; ++attempt) {
    if (attempt > 0) {
      Counters().retries.Increment();
      std::this_thread::sleep_for(std::chrono::milliseconds(10 << attempt));
    }
    std::optional<std::string> response = RoundTrip(owner, line, false, key_asn);
    if (!response) {
      throw serve::ProtocolError(
          ErrorCode::kUnavailable,
          StrFormat("shard %zu (%s) owning AS%u did not answer", owner,
                    pool_.address(owner).ToString().c_str(), key_asn));
    }
    if (IsOverloadedResponse(*response) && attempt + 1 < 3) continue;
    return *response;
  }
  throw serve::ProtocolError(ErrorCode::kInternal, "unreachable");
}

std::string FleetRouter::ScatterTop(const Json& id, const std::string& line) {
  std::vector<std::size_t> missing;
  struct Pending {
    std::size_t shard;
    std::unique_ptr<BackendConn> conn;
  };
  std::vector<Pending> pending;
  for (std::size_t shard = 0; shard < pool_.num_shards(); ++shard) {
    if (!pool_.alive(shard)) {
      missing.push_back(shard);
      continue;
    }
    try {
      std::unique_ptr<BackendConn> conn = pool_.Checkout(shard);
      conn->SendLine(line);
      pending.push_back(Pending{shard, std::move(conn)});
    } catch (const Error&) {
      pool_.MarkFailure(shard);
      missing.push_back(shard);
    }
  }

  auto overall_deadline = std::chrono::steady_clock::now() + options_.request_timeout;
  std::vector<Json> results;
  std::string error_response;
  for (Pending& p : pending) {
    std::optional<std::string> response;
    try {
      response = p.conn->ReadLine(overall_deadline);
    } catch (const Error&) {
      response = std::nullopt;
    }
    if (!response) {
      pool_.MarkFailure(p.shard);
      missing.push_back(p.shard);
      continue;
    }
    pool_.MarkSuccess(p.shard);
    pool_.Checkin(p.shard, std::move(p.conn));
    Json doc = Json::Parse(*response);
    if (doc.Get("ok").type() == Json::Type::kBool && doc.Get("ok").AsBool()) {
      results.push_back(doc.At("result"));
    } else if (error_response.empty()) {
      // A semantic rejection (no sweep store, bad metric) is common to all
      // shards — relay the first one verbatim, as a direct server would.
      error_response = *response;
    }
  }
  if (results.empty()) {
    if (!error_response.empty()) return error_response;
    throw serve::ProtocolError(ErrorCode::kUnavailable,
                               "no live shard answered the ranking scatter");
  }
  std::sort(missing.begin(), missing.end());
  if (!missing.empty()) Counters().partial.Increment();
  return OkResponse(id, MergeTop(results, missing, ring_), false);
}

std::string FleetRouter::FleetStatus(const Json& id) {
  Json shards = Json::MakeArray();
  std::vector<Json> shard_results(pool_.num_shards());
  std::vector<bool> answered(pool_.num_shards(), false);
  for (std::size_t shard = 0; shard < pool_.num_shards(); ++shard) {
    if (!pool_.alive(shard)) continue;
    try {
      std::unique_ptr<BackendConn> conn = pool_.Checkout(shard);
      conn->SendLine(kProbeLine);
      auto deadline = std::chrono::steady_clock::now() + options_.request_timeout;
      std::optional<std::string> response = conn->ReadLine(deadline);
      if (!response) throw Error("status scatter timed out");
      Json doc = Json::Parse(*response);
      if (doc.Get("ok").type() == Json::Type::kBool && doc.Get("ok").AsBool()) {
        shard_results[shard] = doc.At("result");
        answered[shard] = true;
      }
      pool_.MarkSuccess(shard);
      pool_.Checkin(shard, std::move(conn));
    } catch (const Error&) {
      pool_.MarkFailure(shard);
    }
  }

  // Merged capability view: a loadgen preflight against the router must
  // only enable ops every live shard can serve its slice of.
  bool any = false;
  bool sweep_loaded = true;
  bool leak_loaded = true;
  bool fail_loaded = true;
  bool fail_has_users = true;
  std::vector<std::uint64_t> leak_victims;
  std::vector<std::uint64_t> fail_origins;
  std::vector<std::string> fail_scenarios;
  Json num_ases;
  Json num_edges;
  for (std::size_t shard = 0; shard < pool_.num_shards(); ++shard) {
    Json entry = Json::MakeObject();
    entry["address"] = pool_.address(shard).ToString();
    entry["alive"] = static_cast<bool>(answered[shard]);
    entry["index"] = static_cast<std::uint64_t>(shard);
    entry["owned_ranges"] = RangesJson(ring_, shard);
    if (answered[shard]) {
      const Json& result = shard_results[shard];
      any = true;
      entry["cache_hit_ratio"] = result.At("cache").Get("hit_ratio");
      entry["inflight"] = result.Get("inflight");
      entry["uptime_s"] = result.Get("uptime_s");
      std::uint64_t requests = 0;
      std::uint64_t errors = 0;
      if (result.Get("ops").type() == Json::Type::kObject) {
        for (const auto& [op, counters] : result.At("ops").AsObject()) {
          requests += counters.Get("requests").AsU64();
          errors += counters.Get("errors").AsU64();
        }
      }
      entry["errors"] = errors;
      entry["requests"] = requests;
      if (num_ases.is_null()) num_ases = result.Get("num_ases");
      if (num_edges.is_null()) num_edges = result.Get("num_edges");
      const Json& sweep = result.Get("sweep_store");
      const Json& leak = result.Get("leak_store");
      const Json& fail = result.Get("fail_store");
      sweep_loaded = sweep_loaded && sweep.Get("loaded").type() == Json::Type::kBool &&
                     sweep.At("loaded").AsBool();
      bool leak_here = leak.Get("loaded").type() == Json::Type::kBool &&
                       leak.At("loaded").AsBool();
      leak_loaded = leak_loaded && leak_here;
      if (leak_here) {
        for (const Json& v : leak.At("victims").AsArray()) {
          leak_victims.push_back(v.AsU64());
        }
      }
      bool fail_here = fail.Get("loaded").type() == Json::Type::kBool &&
                       fail.At("loaded").AsBool();
      fail_loaded = fail_loaded && fail_here;
      if (fail_here) {
        fail_has_users = fail_has_users && fail.Get("has_users").type() ==
                                               Json::Type::kBool &&
                         fail.At("has_users").AsBool();
        for (const Json& o : fail.At("origins").AsArray()) {
          fail_origins.push_back(o.AsU64());
        }
        for (const Json& s : fail.At("scenarios").AsArray()) {
          fail_scenarios.push_back(s.AsString());
        }
      }
    }
    shards.Append(std::move(entry));
  }
  if (!any) {
    sweep_loaded = false;
    leak_loaded = false;
    fail_loaded = false;
  }
  std::sort(leak_victims.begin(), leak_victims.end());
  leak_victims.erase(std::unique(leak_victims.begin(), leak_victims.end()),
                     leak_victims.end());
  std::sort(fail_origins.begin(), fail_origins.end());
  fail_origins.erase(std::unique(fail_origins.begin(), fail_origins.end()),
                     fail_origins.end());
  // Scenario slugs: first-seen order per shard is already the enum order,
  // and every CLI-produced store holds the same scenario set; dedup keeps
  // the first occurrence.
  std::vector<std::string> scenarios;
  for (const std::string& s : fail_scenarios) {
    if (std::find(scenarios.begin(), scenarios.end(), s) == scenarios.end()) {
      scenarios.push_back(s);
    }
  }

  RouterStats stats = this->stats();
  Json fleet = Json::MakeObject();
  fleet["alive"] = static_cast<std::uint64_t>(pool_.NumAlive());
  fleet["errors"] = stats.errors;
  fleet["hedge_issued"] = stats.hedge_issued;
  fleet["hedge_won"] = stats.hedge_won;
  fleet["partial_answers"] = stats.partial_answers;
  fleet["probe_interval_ms"] =
      static_cast<std::uint64_t>(options_.probe_interval.count());
  fleet["requests"] = stats.requests;
  fleet["retries"] = stats.retries;
  fleet["shard_deaths"] = pool_.deaths();
  fleet["shards"] = std::move(shards);
  fleet["unavailable"] = stats.unavailable;
  Json ring = Json::MakeObject();
  ring["shards"] = static_cast<std::uint64_t>(ring_.num_shards());
  ring["vnodes"] = static_cast<std::uint64_t>(ring_.vnodes());
  fleet["ring"] = std::move(ring);

  Json sweep_store = Json::MakeObject();
  sweep_store["loaded"] = sweep_loaded;
  Json leak_store = Json::MakeObject();
  leak_store["loaded"] = leak_loaded;
  if (leak_loaded) {
    Json victims = Json::MakeArray();
    for (std::uint64_t v : leak_victims) victims.Append(Json(v));
    leak_store["victims"] = std::move(victims);
  }
  Json fail_store = Json::MakeObject();
  fail_store["loaded"] = fail_loaded;
  if (fail_loaded) {
    fail_store["has_users"] = fail_has_users;
    Json origins = Json::MakeArray();
    for (std::uint64_t o : fail_origins) origins.Append(Json(o));
    fail_store["origins"] = std::move(origins);
    Json scenario_list = Json::MakeArray();
    for (const std::string& s : scenarios) scenario_list.Append(Json(s));
    fail_store["scenarios"] = std::move(scenario_list);
  }

  Json result = Json::MakeObject();
  result["fail_store"] = std::move(fail_store);
  result["fleet"] = std::move(fleet);
  result["leak_store"] = std::move(leak_store);
  if (!num_ases.is_null()) result["num_ases"] = num_ases;
  if (!num_edges.is_null()) result["num_edges"] = num_edges;
  result["role"] = "router";
  result["sweep_store"] = std::move(sweep_store);
  result["uptime_s"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_)
          .count();
  return OkResponse(id, result.Dump(), false);
}

std::string FleetRouter::LocalMetrics(const Request& request) const {
  Json result = Json::MakeObject();
  if (request.prometheus) {
    result["content_type"] = "text/plain; version=0.0.4";
    result["format"] = "prometheus";
    result["text"] = obs::RenderPrometheusText();
  } else {
    result["format"] = "json";
    result["metrics"] = obs::ObservabilitySnapshot();
  }
  return result.Dump();
}

std::string FleetRouter::LocalDebug(const Request& request) const {
  return obs::RecorderJson(request.debug_n).Dump();
}

RouterStats FleetRouter::stats() const {
  RouterStats stats;
  stats.requests = Counters().requests.value();
  stats.errors = Counters().errors.value();
  stats.hedge_issued = Counters().hedge_issued.value();
  stats.hedge_won = Counters().hedge_won.value();
  stats.partial_answers = Counters().partial.value();
  stats.unavailable = Counters().unavailable.value();
  stats.retries = Counters().retries.value();
  return stats;
}

}  // namespace flatnet::fleet
