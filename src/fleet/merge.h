// K-way merge of per-shard ranking answers.
//
// Sharded backends attach disjoint origin slices of one sweep store, so
// each shard's `top` answer is the true global ranking restricted to its
// slice — the global top-k is a k-way merge of the per-shard top-k lists
// under the same (value descending, ASN ascending) order, and it is
// byte-identical to the single-process answer because both sides build
// their entries through the same Json encoder and the envelope is
// hand-assembled the same way dispatcher.cc does (sorted keys, `top`
// appended last).
//
// When shards are missing the merge is still produced from the survivors,
// marked `partial: true` and annotated with the dead shards' identities
// and their ring ranges (missing_origin_ranges, hex interval pairs) so a
// client knows exactly which slice of origin space the answer cannot see.
#ifndef FLATNET_FLEET_MERGE_H_
#define FLATNET_FLEET_MERGE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "fleet/ring.h"
#include "util/json.h"

namespace flatnet::fleet {

// Merges parsed per-shard `top` result objects (each `{"denominator":...,
// "k":...,"metric":...,"top":[{"asn":...,"name":...,"reach":...},...]}`)
// into one compact result JSON. `missing` lists ring shards that did not
// answer; empty means the answer is complete and the output carries no
// partial markers at all. `results` must be non-empty. Throws Error when a
// shard result is structurally malformed.
std::string MergeTop(const std::vector<Json>& results,
                     const std::vector<std::size_t>& missing, const Ring& ring);

// Renders one ring hash interval as the wire pair ["%016x-lo","%016x-hi"].
// Hex strings rather than numbers: JSON numbers are doubles and cannot
// carry a full 64-bit point losslessly.
Json RangesJson(const Ring& ring, std::size_t shard);

}  // namespace flatnet::fleet

#endif  // FLATNET_FLEET_MERGE_H_
