#include "fleet/backend.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet::fleet {
namespace {

struct FleetCounters {
  obs::Counter& died = obs::GetCounter("fleet.shard.died");
  obs::Counter& revived = obs::GetCounter("fleet.shard.revived");
  obs::Counter& dials = obs::GetCounter("fleet.backend.dials");
};

FleetCounters& Counters() {
  static FleetCounters counters;
  return counters;
}

int PollMs(std::chrono::steady_clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  // Cap individual polls so a far deadline still re-checks promptly.
  return static_cast<int>(std::min<std::int64_t>(left.count(), 1000));
}

}  // namespace

std::string BackendAddress::ToString() const {
  return StrFormat("%s:%u", host.c_str(), static_cast<unsigned>(port));
}

BackendAddress ParseBackendAddress(const std::string& text) {
  BackendAddress address;
  std::string port_text = text;
  std::size_t colon = text.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) address.host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  auto port = ParseU64(port_text);
  if (!port || *port == 0 || *port > 65535) {
    throw ParseError(StrFormat("backend address '%s': bad port", text.c_str()));
  }
  address.port = static_cast<std::uint16_t>(*port);
  return address;
}

std::unique_ptr<BackendConn> BackendConn::Dial(const BackendAddress& address,
                                               std::chrono::milliseconds timeout) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) throw Error(StrFormat("socket: %s", std::strerror(errno)));
  Counters().dials.Increment();

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(address.port);
  if (::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error(StrFormat("backend '%s': bad address", address.host.c_str()));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      int err = errno;
      ::close(fd);
      throw Error(StrFormat("connect %s: %s", address.ToString().c_str(),
                            std::strerror(err)));
    }
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready <= 0) {
      ::close(fd);
      throw Error(StrFormat("connect %s: timed out", address.ToString().c_str()));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      throw Error(StrFormat("connect %s: %s", address.ToString().c_str(),
                            std::strerror(err != 0 ? err : errno)));
    }
  }
  return std::unique_ptr<BackendConn>(new BackendConn(fd));
}

BackendConn::~BackendConn() {
  if (fd_ >= 0) ::close(fd_);
}

void BackendConn::SendLine(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      if (::poll(&pfd, 1, 1000) <= 0) throw Error("backend send: stalled");
      continue;
    }
    throw Error(StrFormat("backend send: %s", std::strerror(errno)));
  }
}

void BackendConn::ReadAvailable() {
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return;
      continue;
    }
    if (n == 0) throw Error("backend closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    throw Error(StrFormat("backend recv: %s", std::strerror(errno)));
  }
}

std::optional<std::string> BackendConn::TakeLine() {
  std::size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) return std::nullopt;
  std::string line = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

std::optional<std::string> BackendConn::ReadLine(
    std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    if (auto line = TakeLine()) return line;
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, PollMs(deadline));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw Error(StrFormat("backend poll: %s", std::strerror(errno)));
    }
    if (ready == 0) continue;  // re-check the deadline
    ReadAvailable();
  }
}

BackendPool::BackendPool(std::vector<BackendAddress> backends,
                         const BackendPoolOptions& options)
    : backends_(std::move(backends)), options_(options) {
  if (backends_.empty()) throw InvalidArgument("fleet: need at least one backend");
  shards_.reserve(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    shards_.push_back(std::make_unique<ShardState>());
  }
}

std::unique_ptr<BackendConn> BackendPool::Checkout(std::size_t shard) {
  {
    ShardState& state = *shards_[shard];
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.idle.empty()) {
      std::unique_ptr<BackendConn> conn = std::move(state.idle.back());
      state.idle.pop_back();
      return conn;
    }
  }
  return BackendConn::Dial(backends_[shard], options_.dial_timeout);
}

void BackendPool::Checkin(std::size_t shard, std::unique_ptr<BackendConn> conn) {
  if (conn == nullptr) return;
  ShardState& state = *shards_[shard];
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.idle.size() < options_.max_idle) state.idle.push_back(std::move(conn));
}

void BackendPool::DropIdle(std::size_t shard) {
  ShardState& state = *shards_[shard];
  std::lock_guard<std::mutex> lock(state.mu);
  state.idle.clear();
}

bool BackendPool::alive(std::size_t shard) const {
  ShardState& state = *shards_[shard];
  std::lock_guard<std::mutex> lock(state.mu);
  return state.alive;
}

std::vector<bool> BackendPool::AliveMask() const {
  std::vector<bool> mask(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) mask[i] = alive(i);
  return mask;
}

std::size_t BackendPool::NumAlive() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (alive(i)) ++n;
  }
  return n;
}

void BackendPool::MarkSuccess(std::size_t shard) {
  ShardState& state = *shards_[shard];
  bool revived = false;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.consecutive_failures = 0;
    if (!state.alive) {
      state.alive = true;
      revived = true;
    }
  }
  if (revived) {
    Counters().revived.Increment();
    obs::Log(obs::LogLevel::kInfo, "fleet", "shard.revived")
        .Kv("shard", static_cast<std::uint64_t>(shard))
        .Kv("address", backends_[shard].ToString());
  }
}

void BackendPool::MarkFailure(std::size_t shard) {
  ShardState& state = *shards_[shard];
  bool died = false;
  std::size_t failures = 0;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    failures = ++state.consecutive_failures;
    if (state.alive && failures >= options_.failures_to_dead) {
      state.alive = false;
      died = true;
    }
    // A dead shard's idle fds are certainly stale; drop them here so a
    // revival starts from fresh dials.
    if (died) state.idle.clear();
  }
  if (died) {
    deaths_.fetch_add(1, std::memory_order_relaxed);
    Counters().died.Increment();
    obs::Log(obs::LogLevel::kWarn, "fleet", "shard.died")
        .Kv("shard", static_cast<std::uint64_t>(shard))
        .Kv("address", backends_[shard].ToString())
        .Kv("consecutive_failures", static_cast<std::uint64_t>(failures));
  }
}

std::uint64_t BackendPool::deaths() const {
  return deaths_.load(std::memory_order_relaxed);
}

}  // namespace flatnet::fleet
