#include "fleet/hedge.h"

#include <algorithm>

#include "util/error.h"

namespace flatnet::fleet {

HedgePolicy::HedgePolicy(std::size_t num_shards, const HedgeOptions& options)
    : options_(options), states_(num_shards) {
  if (options.multiplier <= 0.0) {
    throw InvalidArgument("hedge: multiplier must be positive");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    throw InvalidArgument("hedge: alpha must be in (0, 1]");
  }
  if (options.min_ms < 0.0 || options.max_ms < options.min_ms) {
    throw InvalidArgument("hedge: need 0 <= min_ms <= max_ms");
  }
}

void HedgePolicy::Observe(std::size_t shard, double latency_ms) {
  if (latency_ms < 0.0) latency_ms = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  State& state = states_[shard];
  if (!state.seen) {
    state.seen = true;
    state.ewma_ms = latency_ms;
  } else {
    state.ewma_ms += options_.alpha * (latency_ms - state.ewma_ms);
  }
}

double HedgePolicy::DelayMsFor(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const State& state = states_[shard];
  if (!state.seen) return options_.max_ms;
  return std::clamp(options_.multiplier * state.ewma_ms, options_.min_ms,
                    options_.max_ms);
}

double HedgePolicy::EwmaMsOf(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_[shard].ewma_ms;
}

}  // namespace flatnet::fleet
