#include "fleet/ring.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace flatnet::fleet {

Ring::Ring(std::size_t num_shards, std::size_t vnodes)
    : num_shards_(num_shards), vnodes_(vnodes) {
  if (num_shards == 0) throw InvalidArgument("ring: num_shards must be positive");
  if (vnodes == 0) throw InvalidArgument("ring: vnodes must be positive");
  points_.reserve(num_shards * vnodes);
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    for (std::size_t replica = 0; replica < vnodes; ++replica) {
      // Vnode keys live in [2^32, ...) of the input space (shard+1 shifted
      // up), ASN keys in [0, 2^32): no systematic input collisions.
      std::uint64_t key = (static_cast<std::uint64_t>(shard + 1) << 32) |
                          static_cast<std::uint64_t>(replica);
      points_.push_back(Vnode{Mix64(key), static_cast<std::uint32_t>(shard)});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Vnode& a, const Vnode& b) {
    if (a.point != b.point) return a.point < b.point;
    return a.shard < b.shard;
  });
  // A point collision would make ownership depend on tie-break order only;
  // the deterministic (point, shard) sort above keeps even that stable.
}

std::size_t Ring::FirstIndexAtOrAfter(std::uint64_t h) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Vnode& v, std::uint64_t value) { return v.point < value; });
  if (it == points_.end()) return 0;  // wrap past the top of the hash space
  return static_cast<std::size_t>(it - points_.begin());
}

std::size_t Ring::Owner(std::uint32_t asn) const {
  return points_[FirstIndexAtOrAfter(Mix64(asn))].shard;
}

std::size_t Ring::FirstLive(std::uint32_t asn, const std::vector<bool>& alive) const {
  std::size_t start = FirstIndexAtOrAfter(Mix64(asn));
  for (std::size_t step = 0; step < points_.size(); ++step) {
    const Vnode& v = points_[(start + step) % points_.size()];
    if (alive[v.shard]) return v.shard;
  }
  return npos;
}

std::size_t Ring::NextLiveDistinct(std::uint32_t asn, std::size_t exclude,
                                   const std::vector<bool>& alive) const {
  std::size_t start = FirstIndexAtOrAfter(Mix64(asn));
  for (std::size_t step = 0; step < points_.size(); ++step) {
    const Vnode& v = points_[(start + step) % points_.size()];
    if (v.shard != exclude && alive[v.shard]) return v.shard;
  }
  return npos;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Ring::RangesOf(
    std::size_t shard) const {
  if (shard >= num_shards_) {
    throw InvalidArgument(StrFormat("ring: shard %zu out of range (%zu shards)", shard,
                                    num_shards_));
  }
  // Vnode i owns (points_[i-1].point, points_[i].point]; the first vnode
  // additionally owns the wrap [0, points_[0].point] ∪ (points_.back(), 2^64).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].shard != shard) continue;
    if (i == 0) {
      ranges.emplace_back(0, points_[0].point);
      if (points_.back().point != ~0ULL) {
        ranges.emplace_back(points_.back().point + 1, ~0ULL);
      }
    } else {
      if (points_[i - 1].point == points_[i].point) continue;  // collided vnode
      ranges.emplace_back(points_[i - 1].point + 1, points_[i].point);
    }
  }
  std::sort(ranges.begin(), ranges.end());
  // Coalesce adjacent intervals so the advertisement is minimal.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> merged;
  for (const auto& r : ranges) {
    if (!merged.empty() && merged.back().second != ~0ULL &&
        merged.back().second + 1 == r.first) {
      merged.back().second = r.second;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

}  // namespace flatnet::fleet
