// Adaptive request hedging: when to re-issue a slow request to a neighbor.
//
// The router keeps an exponentially-weighted moving average of each
// shard's observed response latency. A hedgeable request waits
// `multiplier × ewma(shard)` milliseconds (clamped to [min_ms, max_ms])
// for the primary before duplicating the request to the next distinct
// live shard on the ring; whichever response arrives first wins and the
// loser is abandoned. Before a shard's first observation the delay is
// max_ms — never hedge eagerly against a shard whose speed is unknown.
//
// The tail-at-scale tradeoff: a multiplier near the p50 duplicates half
// of all traffic; a multiplier of ~3 on the mean only duplicates genuine
// stragglers, which is where a fleet's p99 lives.
#ifndef FLATNET_FLEET_HEDGE_H_
#define FLATNET_FLEET_HEDGE_H_

#include <cstddef>
#include <mutex>
#include <vector>

namespace flatnet::fleet {

struct HedgeOptions {
  // Hedge after multiplier × the shard's EWMA latency.
  double multiplier = 3.0;
  // Clamp bounds for the computed delay, milliseconds.
  double min_ms = 2.0;
  double max_ms = 250.0;
  // EWMA smoothing factor in (0, 1]; higher tracks recent latency faster.
  double alpha = 0.2;
};

class HedgePolicy {
 public:
  HedgePolicy(std::size_t num_shards, const HedgeOptions& options);

  // Records one observed response latency for `shard`.
  void Observe(std::size_t shard, double latency_ms);

  // Milliseconds to wait for `shard` before issuing a hedge.
  double DelayMsFor(std::size_t shard) const;

  // The current EWMA for `shard`; 0 before the first observation.
  double EwmaMsOf(std::size_t shard) const;

 private:
  struct State {
    bool seen = false;
    double ewma_ms = 0.0;
  };

  HedgeOptions options_;
  mutable std::mutex mu_;
  std::vector<State> states_;
};

}  // namespace flatnet::fleet

#endif  // FLATNET_FLEET_HEDGE_H_
