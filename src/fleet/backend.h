// Backend shard connections and health for the fleet router.
//
// BackendConn is one nonblocking TCP connection speaking the serve line
// protocol: SendLine writes a framed request, ReadLine poll-waits for one
// complete response line. The split ReadAvailable/TakeLine surface lets
// the router poll two connections at once for hedged requests — first
// complete line on either fd wins.
//
// BackendPool owns per-shard stacks of idle connections (checkout / checkin,
// dial on demand) plus each shard's health word. Health is driven from two
// sides: request-path transport failures call MarkFailure — a shard is dead
// after `failures_to_dead` consecutive ones — and the router's prober calls
// MarkSuccess / MarkFailure on periodic status round-trips, which is also
// how a restarted shard rejoins the ring. Transitions are logged and
// counted (fleet.shard.died / fleet.shard.revived).
#ifndef FLATNET_FLEET_BACKEND_H_
#define FLATNET_FLEET_BACKEND_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace flatnet::fleet {

struct BackendAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string ToString() const;
};

// Parses "host:port" (host optional: ":7001" and "7001" mean 127.0.0.1).
// Throws ParseError on malformed input.
BackendAddress ParseBackendAddress(const std::string& text);

class BackendConn {
 public:
  // Connects (nonblocking + poll) within `timeout`; throws Error on refusal
  // or timeout.
  static std::unique_ptr<BackendConn> Dial(const BackendAddress& address,
                                           std::chrono::milliseconds timeout);
  ~BackendConn();

  BackendConn(const BackendConn&) = delete;
  BackendConn& operator=(const BackendConn&) = delete;

  int fd() const { return fd_; }

  // Writes `line` plus the trailing newline; poll-waits on a full socket
  // buffer. Throws Error when the peer is gone.
  void SendLine(const std::string& line);

  // Drains whatever the socket has ready into the line buffer without
  // blocking. Throws Error on EOF or transport error.
  void ReadAvailable();

  // Pops one complete line from the buffer, if any.
  std::optional<std::string> TakeLine();

  // Blocks (poll) until one complete line or `deadline`. Returns nullopt on
  // deadline (the connection stays usable); throws Error on transport
  // failure.
  std::optional<std::string> ReadLine(std::chrono::steady_clock::time_point deadline);

 private:
  explicit BackendConn(int fd) : fd_(fd) {}

  int fd_;
  std::string buffer_;
};

struct BackendPoolOptions {
  std::chrono::milliseconds dial_timeout{2000};
  // Idle connections kept per shard; extras are closed on checkin.
  std::size_t max_idle = 8;
  // Consecutive failures before a shard is marked dead.
  std::size_t failures_to_dead = 2;
};

class BackendPool {
 public:
  BackendPool(std::vector<BackendAddress> backends, const BackendPoolOptions& options);

  std::size_t num_shards() const { return backends_.size(); }
  const BackendAddress& address(std::size_t shard) const { return backends_[shard]; }

  // Pops an idle connection or dials a new one; throws Error when the shard
  // is unreachable (callers pair that with MarkFailure).
  std::unique_ptr<BackendConn> Checkout(std::size_t shard);

  // Returns a connection with no in-flight request to the idle stack. Never
  // check in a connection whose response was abandoned — close it instead,
  // or the next checkout would read the stale response.
  void Checkin(std::size_t shard, std::unique_ptr<BackendConn> conn);

  // Drops every idle connection to `shard` (after a transport failure the
  // pooled fds are likely dead too).
  void DropIdle(std::size_t shard);

  bool alive(std::size_t shard) const;
  std::vector<bool> AliveMask() const;
  std::size_t NumAlive() const;

  void MarkSuccess(std::size_t shard);
  void MarkFailure(std::size_t shard);

  // Lifetime count of alive→dead transitions (ring-heal observability).
  std::uint64_t deaths() const;

 private:
  struct ShardState {
    mutable std::mutex mu;
    std::vector<std::unique_ptr<BackendConn>> idle;
    bool alive = true;
    std::size_t consecutive_failures = 0;
  };

  std::vector<BackendAddress> backends_;
  BackendPoolOptions options_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::atomic<std::uint64_t> deaths_{0};
};

}  // namespace flatnet::fleet

#endif  // FLATNET_FLEET_BACKEND_H_
