// Carves disjoint prefixes out of address pools.
//
// The topology generator assigns every AS one or more routed prefixes plus
// special-purpose blocks (IXP transfer LANs, private interconnect ranges).
// The allocator hands out aligned, non-overlapping blocks in order.
#ifndef FLATNET_NET_PREFIX_ALLOCATOR_H_
#define FLATNET_NET_PREFIX_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"

namespace flatnet {

class PrefixAllocator {
 public:
  // `pool` is the block the allocator may carve from.
  explicit PrefixAllocator(Ipv4Prefix pool);

  // Allocates the next aligned block of the requested length; nullopt when
  // the pool is exhausted. `length` must be >= pool length and <= 32.
  std::optional<Ipv4Prefix> Allocate(std::uint8_t length);

  // Addresses remaining in the pool.
  std::uint64_t Remaining() const;

  const Ipv4Prefix& pool() const { return pool_; }

 private:
  Ipv4Prefix pool_;
  std::uint64_t cursor_ = 0;  // offset of the next free address in the pool
};

}  // namespace flatnet

#endif  // FLATNET_NET_PREFIX_ALLOCATOR_H_
