#include "net/prefix_allocator.h"

#include "util/error.h"

namespace flatnet {

PrefixAllocator::PrefixAllocator(Ipv4Prefix pool) : pool_(pool) {}

std::optional<Ipv4Prefix> PrefixAllocator::Allocate(std::uint8_t length) {
  if (length < pool_.length() || length > 32) {
    throw InvalidArgument("PrefixAllocator::Allocate: length outside pool range");
  }
  std::uint64_t block = std::uint64_t{1} << (32 - length);
  // Align the cursor up to the block size, then take the block.
  std::uint64_t aligned = (cursor_ + block - 1) & ~(block - 1);
  if (aligned + block > pool_.Size()) return std::nullopt;
  cursor_ = aligned + block;
  return Ipv4Prefix(Ipv4Address(pool_.address().value() + static_cast<std::uint32_t>(aligned)),
                    length);
}

std::uint64_t PrefixAllocator::Remaining() const { return pool_.Size() - cursor_; }

}  // namespace flatnet
