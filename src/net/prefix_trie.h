// Binary radix trie keyed by IPv4 prefix, supporting exact insert and
// longest-prefix match — the core of the Cymru-style IP-to-ASN resolver and
// of the routed-prefix table the traceroute simulator consults.
//
// Nodes are stored in a flat vector (indices instead of pointers) for cache
// locality and trivial copy/move semantics.
#ifndef FLATNET_NET_PREFIX_TRIE_H_
#define FLATNET_NET_PREFIX_TRIE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"

namespace flatnet {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  // Inserts or overwrites the value at `prefix`. Returns true if the prefix
  // was newly inserted, false if an existing value was replaced.
  bool Insert(const Ipv4Prefix& prefix, T value) {
    std::uint32_t node = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      unsigned bit = (prefix.address().value() >> (31 - depth)) & 1u;
      std::uint32_t& child = nodes_[node].child[bit];
      if (child == kNone) {
        child = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(Node{});
      }
      node = nodes_[node].child[bit];
    }
    bool fresh = !nodes_[node].value.has_value();
    nodes_[node].value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  // Exact-match lookup.
  const T* Find(const Ipv4Prefix& prefix) const {
    std::uint32_t node = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      unsigned bit = (prefix.address().value() >> (31 - depth)) & 1u;
      std::uint32_t child = nodes_[node].child[bit];
      if (child == kNone) return nullptr;
      node = child;
    }
    return nodes_[node].value ? &*nodes_[node].value : nullptr;
  }

  // Longest-prefix match for an address; returns the matched prefix and a
  // pointer to its value, or nullopt if nothing covers `addr`.
  std::optional<std::pair<Ipv4Prefix, const T*>> LongestMatch(Ipv4Address addr) const {
    std::uint32_t node = 0;
    std::optional<std::pair<Ipv4Prefix, const T*>> best;
    for (std::uint8_t depth = 0; depth <= 32; ++depth) {
      if (nodes_[node].value) {
        best = {Ipv4Prefix(addr, depth), &*nodes_[node].value};
      }
      if (depth == 32) break;
      unsigned bit = (addr.value() >> (31 - depth)) & 1u;
      std::uint32_t child = nodes_[node].child[bit];
      if (child == kNone) break;
      node = child;
    }
    return best;
  }

  // Value of the longest matching prefix, or nullptr.
  const T* Lookup(Ipv4Address addr) const {
    auto match = LongestMatch(addr);
    return match ? match->second : nullptr;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Visits every stored (prefix, value) pair in address order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    VisitNode(0, 0, 0, fn);
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Node {
    std::uint32_t child[2] = {kNone, kNone};
    std::optional<T> value;
  };

  template <typename Fn>
  void VisitNode(std::uint32_t node, std::uint32_t bits, std::uint8_t depth, Fn&& fn) const {
    if (nodes_[node].value) {
      fn(Ipv4Prefix(Ipv4Address(bits), depth), *nodes_[node].value);
    }
    if (depth == 32) return;
    if (nodes_[node].child[0] != kNone) {
      VisitNode(nodes_[node].child[0], bits, depth + 1, fn);
    }
    if (nodes_[node].child[1] != kNone) {
      VisitNode(nodes_[node].child[1], bits | (std::uint32_t{1} << (31 - depth)), depth + 1, fn);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace flatnet

#endif  // FLATNET_NET_PREFIX_TRIE_H_
