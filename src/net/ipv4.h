// IPv4 address and prefix value types.
//
// Addresses are stored host-order in a uint32 so comparisons and prefix
// masks are single integer operations. Both types are regular (copyable,
// comparable, hashable) per C.10/C.61.
#ifndef FLATNET_NET_IPV4_H_
#define FLATNET_NET_IPV4_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace flatnet {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  static std::optional<Ipv4Address> FromString(std::string_view s);

  constexpr std::uint32_t value() const { return value_; }
  std::string ToString() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  // Canonicalizes: host bits below `length` are zeroed. length must be <= 32.
  Ipv4Prefix(Ipv4Address address, std::uint8_t length);

  // Parses "a.b.c.d/len".
  static std::optional<Ipv4Prefix> FromString(std::string_view s);

  constexpr Ipv4Address address() const { return address_; }
  constexpr std::uint8_t length() const { return length_; }

  // Network mask for this prefix length (e.g. /24 -> 255.255.255.0).
  std::uint32_t Mask() const;

  bool Contains(Ipv4Address addr) const;
  bool Contains(const Ipv4Prefix& other) const;

  // Number of addresses covered (2^(32-length)).
  std::uint64_t Size() const { return std::uint64_t{1} << (32 - length_); }

  // The i-th address inside the prefix; i must be < Size().
  Ipv4Address AddressAt(std::uint64_t i) const;

  // Splits into the two /(length+1) halves; length must be < 32.
  std::pair<Ipv4Prefix, Ipv4Prefix> Split() const;

  std::string ToString() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  Ipv4Address address_;
  std::uint8_t length_ = 0;
};

}  // namespace flatnet

template <>
struct std::hash<flatnet::Ipv4Address> {
  std::size_t operator()(flatnet::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<flatnet::Ipv4Prefix> {
  std::size_t operator()(const flatnet::Ipv4Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}((std::uint64_t{p.address().value()} << 8) | p.length());
  }
};

#endif  // FLATNET_NET_IPV4_H_
