#include "net/ipv4.h"

#include "util/error.h"
#include "util/strings.h"

namespace flatnet {

std::optional<Ipv4Address> Ipv4Address::FromString(std::string_view s) {
  auto parts = Split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (auto part : parts) {
    auto octet = ParseU64(part);
    if (!octet || *octet > 255) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(*octet);
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::ToString() const {
  return StrFormat("%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                   (value_ >> 8) & 0xff, value_ & 0xff);
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address address, std::uint8_t length) : length_(length) {
  if (length > 32) throw InvalidArgument("Ipv4Prefix: length > 32");
  std::uint32_t mask = length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
  address_ = Ipv4Address(address.value() & mask);
}

std::optional<Ipv4Prefix> Ipv4Prefix::FromString(std::string_view s) {
  auto slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Address::FromString(s.substr(0, slash));
  auto len = ParseU64(s.substr(slash + 1));
  if (!addr || !len || *len > 32) return std::nullopt;
  return Ipv4Prefix(*addr, static_cast<std::uint8_t>(*len));
}

std::uint32_t Ipv4Prefix::Mask() const {
  return length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
}

bool Ipv4Prefix::Contains(Ipv4Address addr) const {
  return (addr.value() & Mask()) == address_.value();
}

bool Ipv4Prefix::Contains(const Ipv4Prefix& other) const {
  return other.length_ >= length_ && Contains(other.address_);
}

Ipv4Address Ipv4Prefix::AddressAt(std::uint64_t i) const {
  if (i >= Size()) throw InvalidArgument("Ipv4Prefix::AddressAt: index out of range");
  return Ipv4Address(address_.value() + static_cast<std::uint32_t>(i));
}

std::pair<Ipv4Prefix, Ipv4Prefix> Ipv4Prefix::Split() const {
  if (length_ >= 32) throw InvalidArgument("Ipv4Prefix::Split: cannot split a /32");
  auto half = static_cast<std::uint8_t>(length_ + 1);
  Ipv4Prefix lo(address_, half);
  Ipv4Prefix hi(Ipv4Address(address_.value() | (std::uint32_t{1} << (32 - half))), half);
  return {lo, hi};
}

std::string Ipv4Prefix::ToString() const {
  return address_.ToString() + "/" + std::to_string(length_);
}

}  // namespace flatnet
