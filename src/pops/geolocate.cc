#include "pops/geolocate.h"

#include <algorithm>

#include "geo/geo.h"

namespace flatnet {
namespace {

// Speed of light in fiber: ~200 km per millisecond, round trip halves it.
constexpr double kKmPerMsRtt = 100.0;

}  // namespace

PingMesh::PingMesh(const AddressPlan& plan, double icmp_filter_fraction, std::uint64_t seed)
    : plan_(plan), filtered_(plan.world().num_ases()) {
  Rng rng(seed);
  for (AsId id = 0; id < plan.world().num_ases(); ++id) {
    if (rng.Bernoulli(icmp_filter_fraction)) filtered_.Set(id);
  }
}

std::optional<double> PingMesh::PingMs(const VantagePoint& vp, Ipv4Address target,
                                       Rng& rng) const {
  auto owner = plan_.OperatorOf(target);
  auto city = plan_.CityOf(target);
  if (!owner || !city || filtered_.Test(*owner)) return std::nullopt;
  auto cities = WorldCities();
  double km = DistanceKm(cities[vp.city].location, cities[*city].location);
  // Propagation delay plus path stretch and queueing noise.
  double rtt = km / kKmPerMsRtt * rng.UniformDouble(1.0, 1.25) + rng.UniformDouble(0.05, 0.4);
  return rtt;
}

Geolocator::Geolocator(const World& world, const AddressPlan& plan, const PingMesh& mesh,
                       const RdnsDatabase* rdns, std::uint64_t seed)
    : world_(world), plan_(plan), mesh_(mesh), rdns_(rdns), rng_(seed) {
  Rng rng(seed ^ 0x5eed);
  auto cities = WorldCities();
  vps_by_city_.resize(cities.size());

  // Deploy probes the way RIPE Atlas covers the world: a couple per
  // large-population market, fewer elsewhere, some cities dark. Hosts are
  // drawn from the ASes homed in the city.
  std::vector<std::vector<AsId>> ases_by_city(cities.size());
  for (AsId id = 0; id < world.num_ases(); ++id) {
    ases_by_city[world.home_city[id]].push_back(id);
  }
  for (CityIndex c = 0; c < cities.size(); ++c) {
    if (ases_by_city[c].empty()) continue;
    auto probes = static_cast<std::uint32_t>(
        std::min<double>(4.0, 1.0 + cities[c].population_millions / 6.0));
    if (rng.Bernoulli(0.1)) continue;  // Atlas-less city
    for (std::uint32_t k = 0; k < probes; ++k) {
      AsId host = ases_by_city[c][rng.UniformU64(ases_by_city[c].size())];
      vps_by_city_[c].push_back(static_cast<std::uint32_t>(vps_.size()));
      vps_.push_back({host, c});
    }
  }
}

std::vector<CityIndex> Geolocator::Candidates(Ipv4Address addr, AsId owner) const {
  // PeeringDB facilities of the owning AS.
  std::vector<CityIndex> candidates = world_.presence[owner];

  // rDNS hint narrows the candidate set (Appendix D step 1).
  if (rdns_ != nullptr) {
    if (auto hostname = rdns_->Lookup(addr)) {
      if (auto hint = ExtractLocationManual(*hostname)) {
        std::vector<CityIndex> narrowed;
        for (CityIndex c : candidates) {
          if (c == *hint) narrowed.push_back(c);
        }
        if (!narrowed.empty()) return narrowed;
        return {*hint};  // trust the hostname even off the facility list
      }
    }
  }
  return candidates;
}

std::optional<CityIndex> Geolocator::Locate(Ipv4Address addr, AsId owner) const {
  for (CityIndex candidate : Candidates(addr, owner)) {
    const auto& local_vps = vps_by_city_[candidate];
    if (local_vps.empty()) continue;  // no probe within 40 km of the facility
    const VantagePoint& vp = vps_[local_vps[rng_.UniformU64(local_vps.size())]];
    auto rtt = mesh_.PingMs(vp, addr, rng_);
    if (rtt && *rtt <= 1.0) return candidate;
  }
  return std::nullopt;
}

double GeolocationScore::Coverage() const {
  return attempted == 0 ? 0.0 : static_cast<double>(answered) / attempted;
}

double GeolocationScore::Precision() const {
  return answered == 0 ? 0.0 : static_cast<double>(correct) / answered;
}

GeolocationScore ScoreGeolocation(const World& world, const AddressPlan& plan,
                                  const Geolocator& geolocator, std::size_t sample,
                                  std::uint64_t seed) {
  Rng rng(seed);
  GeolocationScore score;
  const AsGraph& graph = world.full_graph;
  std::size_t guard = 0;
  while (score.attempted < sample && guard++ < sample * 20) {
    AsId a = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    auto neighbors = graph.NeighborsOf(a);
    if (neighbors.empty()) continue;
    AsId b = neighbors[rng.UniformU64(neighbors.size())].id;
    Ipv4Address addr = plan.BorderAddress(a, b);  // b's interface towards a
    ++score.attempted;
    auto located = geolocator.Locate(addr, b);
    if (!located) continue;
    ++score.answered;
    if (auto truth = plan.CityOf(addr); truth && *truth == *located) ++score.correct;
  }
  return score;
}

}  // namespace flatnet
