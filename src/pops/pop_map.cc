#include "pops/pop_map.h"

#include <algorithm>

namespace flatnet {

std::vector<PopDeployment> BuildDeployments(const World& world) {
  std::vector<PopDeployment> deployments;
  for (const CloudInstance& cloud : world.clouds) {
    if (!cloud.archetype.is_study_cloud) continue;
    deployments.push_back(
        {cloud.archetype.name, cloud.id, /*is_cloud=*/true, world.presence[cloud.id]});
  }
  for (AsId id : world.tiers.tier1) {
    deployments.push_back({world.metadata.Get(id).name, id, /*is_cloud=*/false,
                           world.presence[id]});
  }
  for (AsId id : world.tiers.tier2) {
    deployments.push_back({world.metadata.Get(id).name, id, /*is_cloud=*/false,
                           world.presence[id]});
  }
  return deployments;
}

std::set<CityIndex> CohortCities(const std::vector<PopDeployment>& deployments, bool clouds) {
  std::set<CityIndex> cities;
  for (const PopDeployment& d : deployments) {
    if (d.is_cloud != clouds) continue;
    cities.insert(d.cities.begin(), d.cities.end());
  }
  return cities;
}

CityPresenceSplit SplitCityPresence(const std::vector<PopDeployment>& deployments) {
  std::set<CityIndex> cloud = CohortCities(deployments, true);
  std::set<CityIndex> transit = CohortCities(deployments, false);
  CityPresenceSplit split;
  for (CityIndex c : cloud) {
    if (transit.contains(c)) {
      split.both.push_back(c);
    } else {
      split.cloud_only.push_back(c);
    }
  }
  for (CityIndex c : transit) {
    if (!cloud.contains(c)) split.transit_only.push_back(c);
  }
  return split;
}

std::vector<ProviderCoverage> PerProviderCoverage(const std::vector<PopDeployment>& deployments) {
  std::vector<ProviderCoverage> rows;
  rows.reserve(deployments.size());
  for (const PopDeployment& d : deployments) {
    ProviderCoverage row;
    row.name = d.name;
    row.is_cloud = d.is_cloud;
    row.coverage_500km = PopulationCoverage(d.cities, 500.0).world;
    row.coverage_700km = PopulationCoverage(d.cities, 700.0).world;
    row.coverage_1000km = PopulationCoverage(d.cities, 1000.0).world;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace flatnet
