// City-level PoP topology maps (§4.2 / §9).
//
// The paper consolidates provider network maps, PeeringDB, and rDNS into
// per-network PoP city lists; here the lists come from the generated
// world's presence footprints. This module groups them into the cloud and
// transit cohorts that Figs 11/12 compare.
#ifndef FLATNET_POPS_POP_MAP_H_
#define FLATNET_POPS_POP_MAP_H_

#include <set>
#include <string>
#include <vector>

#include "geo/population.h"
#include "topogen/world.h"

namespace flatnet {

struct PopDeployment {
  std::string name;
  AsId id = kInvalidAsId;
  bool is_cloud = false;
  std::vector<CityIndex> cities;
};

// Deployments of the study clouds plus every Tier-1 and Tier-2 archetype.
std::vector<PopDeployment> BuildDeployments(const World& world);

// Union of PoP cities across a cohort.
std::set<CityIndex> CohortCities(const std::vector<PopDeployment>& deployments, bool clouds);

// Fig 11's categories: cities with only cloud PoPs, only transit PoPs, or
// both.
struct CityPresenceSplit {
  std::vector<CityIndex> cloud_only;
  std::vector<CityIndex> transit_only;
  std::vector<CityIndex> both;
};
CityPresenceSplit SplitCityPresence(const std::vector<PopDeployment>& deployments);

// Fig 12 rows: coverage per provider at each radius.
struct ProviderCoverage {
  std::string name;
  bool is_cloud = false;
  double coverage_500km = 0.0;
  double coverage_700km = 0.0;
  double coverage_1000km = 0.0;
};
std::vector<ProviderCoverage> PerProviderCoverage(const std::vector<PopDeployment>& deployments);

}  // namespace flatnet

#endif  // FLATNET_POPS_POP_MAP_H_
