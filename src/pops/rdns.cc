#include "pops/rdns.h"

#include <algorithm>
#include <cmath>
#include <regex>
#include <set>
#include <unordered_map>

#include "util/rng.h"
#include "util/strings.h"

namespace flatnet {
namespace {

struct NamedProfile {
  const char* name;
  RdnsStyle style;
  double coverage;
  std::uint32_t hostnames;
  const char* domain;
};

// Table 3 of the paper: PoP confirmation percentage and hostname counts.
constexpr NamedProfile kNamedProfiles[] = {
    {"NTT", RdnsStyle::kDashedPop, 1.00, 7166, "gin.ntt.example.net"},
    {"Hurricane Electric", RdnsStyle::kDashedPop, 0.991, 5613, "core.he.example.net"},
    {"AT&T", RdnsStyle::kCompact, 0.923, 11020, "ip.att.example.net"},
    {"Tata", RdnsStyle::kDashedPop, 0.904, 5470, "if.tata.example.net"},
    {"Google", RdnsStyle::kCompact, 0.892, 29833, "net.google.example.com"},
    {"PCCW", RdnsStyle::kDashedPop, 0.855, 948, "pccw.example.net"},
    {"Vodafone", RdnsStyle::kCompact, 0.839, 4618, "vf.example.net"},
    {"Zayo", RdnsStyle::kDashedPop, 0.833, 2878, "zayo.example.com"},
    {"Sprint", RdnsStyle::kDashedPop, 0.674, 2270, "sprintlink.example.net"},
    {"Telxius", RdnsStyle::kCompact, 0.667, 628, "telxius.example.net"},
    {"Telia", RdnsStyle::kDashedPop, 0.654, 10073, "telia.example.net"},
    {"Microsoft", RdnsStyle::kCompact, 0.453, 7195, "ntwk.msn.example.net"},
    {"Telecom Italia Sparkle", RdnsStyle::kDashedPop, 0.397, 2669, "seabone.example.net"},
    {"Orange", RdnsStyle::kCompact, 0.267, 701, "opentransit.example.net"},
    {"Amazon", RdnsStyle::kNone, 0.0, 0, ""},
};

std::string SanitizedToken(std::string_view token) {
  std::string out;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

}  // namespace

RdnsProfile ProfileFor(const std::string& network_name) {
  for (const NamedProfile& p : kNamedProfiles) {
    if (network_name == p.name) {
      return {p.style, p.coverage, p.hostnames, p.domain};
    }
  }
  RdnsProfile fallback;
  fallback.domain = AsciiLower(network_name) + ".example.net";
  // Strip characters that never appear in DNS labels.
  std::erase_if(fallback.domain, [](char c) { return c == ' ' || c == '&'; });
  return fallback;
}

RdnsDatabase::RdnsDatabase(const World& world, const std::vector<PopDeployment>& deployments,
                           std::uint64_t seed, const AddressPlan* plan) {
  Rng rng(seed);
  auto cities = WorldCities();
  std::uint32_t router_counter = 0;

  for (const PopDeployment& deployment : deployments) {
    RdnsProfile profile = ProfileFor(deployment.name);
    if (profile.style == RdnsStyle::kNone || deployment.cities.empty()) continue;

    // The covered subset of PoPs (the paper confirms 73% of PoPs overall).
    std::vector<CityIndex> covered = deployment.cities;
    rng.Shuffle(covered);
    auto covered_count = static_cast<std::size_t>(
        std::round(profile.pop_coverage * static_cast<double>(covered.size())));
    covered.resize(std::max<std::size_t>(covered_count, profile.pop_coverage > 0 ? 1 : 0));
    if (covered.empty()) continue;
    std::set<CityIndex> covered_set(covered.begin(), covered.end());

    std::uint32_t emitted_border = 0;
    if (plan != nullptr) {
      // Real border interfaces first: the PTRs an operator actually
      // publishes are the ones traceroutes see.
      std::uint32_t border_budget = profile.hostname_count * 3 / 5;
      for (const Neighbor& nb : world.full_graph.NeighborsOf(deployment.id)) {
        if (emitted_border >= border_budget) break;
        const LinkAddressing& link = plan->LinkInfo(deployment.id, nb.id);
        if (!covered_set.contains(link.city)) continue;  // PoP without PTRs
        std::string iata = AsciiLower(cities[link.city].iata);
        std::uint32_t pop_index = 1 + static_cast<std::uint32_t>(rng.UniformU64(4));
        std::string hostname;
        if (profile.style == RdnsStyle::kDashedPop) {
          hostname = StrFormat("ae-%u-%u.ear%u.%s%u.%s",
                               static_cast<unsigned>(rng.UniformU64(16)),
                               static_cast<unsigned>(rng.UniformU64(100)),
                               static_cast<unsigned>(1 + rng.UniformU64(4)), iata.c_str(),
                               pop_index, profile.domain.c_str());
        } else {
          hostname = StrFormat("%s%u-rtr-%u.%s", iata.c_str(), pop_index,
                               static_cast<unsigned>(rng.UniformU64(32)),
                               profile.domain.c_str());
        }
        RdnsEntry entry;
        entry.addr = plan->BorderAddress(nb.id, deployment.id);
        entry.hostname = std::move(hostname);
        entry.owner = deployment.id;
        entry.true_city = link.city;
        entry.router_id = router_counter++;
        if (by_addr_.contains(entry.addr.value())) continue;
        by_addr_.emplace(entry.addr.value(), entries_.size());
        entries_.push_back(std::move(entry));
        ++emitted_border;
      }
    }

    // Addresses: a dedicated slice near the head of the first prefix
    // (probe destinations use offset 1; interface pools sit in the upper
    // half — see AddressPlan).
    const Ipv4Prefix& prefix = world.prefixes[deployment.id].front();
    std::uint64_t base = 16;
    std::uint64_t room = prefix.Size() / 4;

    std::uint32_t emitted = emitted_border;
    std::uint32_t per_router_counter = 0;
    while (emitted < profile.hostname_count) {
      CityIndex city = covered[rng.UniformU64(covered.size())];
      std::string iata = AsciiLower(cities[city].iata);
      std::uint32_t router_id = router_counter++;
      std::uint32_t pop_index = 1 + static_cast<std::uint32_t>(rng.UniformU64(4));
      std::string hostname;
      if (profile.style == RdnsStyle::kDashedPop) {
        hostname = StrFormat("ae-%u-%u.ear%u.%s%u.%s",
                             static_cast<unsigned>(rng.UniformU64(16)),
                             static_cast<unsigned>(rng.UniformU64(100)),
                             static_cast<unsigned>(1 + rng.UniformU64(4)), iata.c_str(),
                             pop_index, profile.domain.c_str());
      } else {
        hostname = StrFormat("%s%u-rtr-%u.%s", iata.c_str(), pop_index,
                             static_cast<unsigned>(rng.UniformU64(32)), profile.domain.c_str());
      }
      // 1-3 interface addresses alias to this router.
      auto interfaces = static_cast<std::uint32_t>(1 + rng.UniformU64(3));
      for (std::uint32_t k = 0; k < interfaces && emitted < profile.hostname_count; ++k) {
        RdnsEntry entry;
        entry.addr = prefix.AddressAt(base + (per_router_counter++ % room));
        entry.hostname = hostname;
        entry.owner = deployment.id;
        entry.true_city = city;
        entry.router_id = router_id;
        by_addr_.emplace(entry.addr.value(), entries_.size());
        entries_.push_back(std::move(entry));
        ++emitted;
      }
    }
  }
}

std::optional<std::string> RdnsDatabase::Lookup(Ipv4Address addr) const {
  if (auto it = by_addr_.find(addr.value()); it != by_addr_.end()) {
    return entries_[it->second].hostname;
  }
  return std::nullopt;
}

std::vector<const RdnsEntry*> RdnsDatabase::EntriesOf(AsId owner) const {
  std::vector<const RdnsEntry*> out;
  for (const RdnsEntry& entry : entries_) {
    if (entry.owner == owner) out.push_back(&entry);
  }
  return out;
}

std::size_t RdnsDatabase::ConfirmedPopCount(AsId owner) const {
  std::set<CityIndex> confirmed;
  for (const RdnsEntry& entry : entries_) {
    if (entry.owner != owner) continue;
    if (auto city = ExtractLocationManual(entry.hostname)) confirmed.insert(*city);
  }
  return confirmed.size();
}

std::optional<CityIndex> ExtractLocationManual(const std::string& hostname) {
  for (std::string_view label : Split(hostname, '.')) {
    for (std::string_view token : Split(label, '-')) {
      std::string bare = SanitizedToken(token);
      if (bare.size() != 3) continue;
      if (auto city = CityByIata(bare)) return city;
    }
  }
  return std::nullopt;
}

std::map<std::string, std::vector<Ipv4Address>> GroupAliases(
    const std::vector<RdnsEntry>& entries) {
  std::map<std::string, std::vector<Ipv4Address>> groups;
  for (const RdnsEntry& entry : entries) groups[entry.hostname].push_back(entry.addr);
  return groups;
}

std::optional<std::string> InferNamingRegex(const std::vector<std::string>& hostnames) {
  // Mirrors the paper's experience: sc_hoiho needs enough alias groups to
  // commit to a convention.
  constexpr std::size_t kMinSamples = 8;
  if (hostnames.size() < kMinSamples) return std::nullopt;

  // Score each dot-field position by how often its (digit-stripped) leading
  // dash token is a known airport code.
  std::size_t best_pos = 0;
  double best_score = 0.0;
  for (std::size_t pos = 0; pos < 6; ++pos) {
    std::size_t hits = 0;
    std::size_t present = 0;
    for (const std::string& hostname : hostnames) {
      auto labels = Split(hostname, '.');
      if (pos >= labels.size()) continue;
      ++present;
      std::string bare = SanitizedToken(Split(labels[pos], '-')[0]);
      if (bare.size() == 3 && CityByIata(bare)) ++hits;
    }
    if (present == 0) continue;
    double score = static_cast<double>(hits) / static_cast<double>(hostnames.size());
    if (score > best_score) {
      best_score = score;
      best_pos = pos;
    }
  }
  if (best_score < 0.8) return std::nullopt;

  std::string regex = "^";
  for (std::size_t i = 0; i < best_pos; ++i) regex += "[^.]+\\.";
  regex += "([a-z]{3})[0-9]*(?:-[^.]*)?\\..*$";
  return regex;
}

std::optional<CityIndex> ExtractWithRegex(const std::string& regex,
                                          const std::string& hostname) {
  std::regex re(regex);
  std::smatch match;
  if (!std::regex_match(hostname, match, re) || match.size() < 2) return std::nullopt;
  return CityByIata(match[1].str());
}

}  // namespace flatnet
