// Reverse-DNS hostname generation and location extraction (§4.2).
//
// Router hostnames encode PoP locations as airport codes; the paper
// extracts them with hand-written regexes and with sc_hoiho-learned naming
// conventions. Both directions are reproduced here: a generator that emits
// per-network hostname conventions over the world's PoP footprints (with
// per-network coverage matching Table 3 — Amazon publishes no rDNS at all),
// a manual token-based extractor, and a hoiho-style learner that infers a
// network's naming template from examples and returns a regex.
#ifndef FLATNET_POPS_RDNS_H_
#define FLATNET_POPS_RDNS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "measure/addressing.h"
#include "net/ipv4.h"
#include "pops/pop_map.h"
#include "topogen/world.h"

namespace flatnet {

enum class RdnsStyle {
  kNone,       // no PTR records published (Amazon)
  kDashedPop,  // ae-3-80.ear2.nyc1.gin.example.net
  kCompact,    // nyc1-rtr-3.example.com
};

struct RdnsProfile {
  RdnsStyle style = RdnsStyle::kDashedPop;
  // Fraction of PoPs whose routers carry PTR records (Table 3's "% rDNS").
  double pop_coverage = 0.73;
  // Total router/interface hostnames to emit (Table 3's counts).
  std::uint32_t hostname_count = 1000;
  std::string domain;
};

// Table-3-derived profile for a named network (defaults for others).
RdnsProfile ProfileFor(const std::string& network_name);

struct RdnsEntry {
  Ipv4Address addr;
  std::string hostname;
  AsId owner = kInvalidAsId;
  CityIndex true_city = 0;     // ground truth for scoring extraction
  std::uint32_t router_id = 0;  // interfaces of one router share this (alias groups)
};

class RdnsDatabase {
 public:
  // When `plan` is non-null, hostnames are attached to the networks' actual
  // border interfaces first (so traceroute hops and geolocation candidates
  // resolve), with synthetic internal routers filling the remaining
  // per-network hostname budget.
  RdnsDatabase(const World& world, const std::vector<PopDeployment>& deployments,
               std::uint64_t seed, const AddressPlan* plan = nullptr);

  const std::vector<RdnsEntry>& entries() const { return entries_; }
  std::optional<std::string> Lookup(Ipv4Address addr) const;

  // Entries belonging to one network.
  std::vector<const RdnsEntry*> EntriesOf(AsId owner) const;

  // PoP cities of `owner` confirmed by at least one hostname.
  std::size_t ConfirmedPopCount(AsId owner) const;

 private:
  std::vector<RdnsEntry> entries_;
  std::map<std::uint32_t, std::size_t> by_addr_;  // raw ip -> entry index
};

// Manual extraction: tokenize on '.'/'-', strip trailing digits, and match
// tokens against the airport-code table.
std::optional<CityIndex> ExtractLocationManual(const std::string& hostname);

// MIDAR-style alias grouping: interfaces sharing a router (here, the same
// hostname) collapse into one alias group. Returns hostname -> addresses.
std::map<std::string, std::vector<Ipv4Address>> GroupAliases(
    const std::vector<RdnsEntry>& entries);

// sc_hoiho-style convention learning: finds the dot-field position holding
// a location code across example hostnames (one per alias group) and
// returns an extraction regex, or nullopt when no consistent convention
// exists (mirrors the paper's "low number of alias groups" failures).
std::optional<std::string> InferNamingRegex(const std::vector<std::string>& hostnames);

// Applies a regex from InferNamingRegex.
std::optional<CityIndex> ExtractWithRegex(const std::string& regex,
                                          const std::string& hostname);

}  // namespace flatnet

#endif  // FLATNET_POPS_RDNS_H_
