// Active IP geolocation (Appendix D).
//
// Reproduces the paper's RIPE-IPmap-style process:
//   1. candidate <facility, city> locations for address X come from the
//      owner AS's PeeringDB footprint (here: the world's presence lists),
//      narrowed by rDNS location hints when a hostname exists;
//   2. for each candidate city, pick a vantage point within 40 km hosted in
//      an AS present at the facility or inside its customer cone (here: the
//      probe mesh's per-city VPs);
//   3. ping X; an RTT of at most 1 ms (≈100 km at the speed of light in
//      fiber) pins X to the VP's city.
// The method answers only when the RTT test passes, so it is conservative:
// high precision, partial coverage.
#ifndef FLATNET_POPS_GEOLOCATE_H_
#define FLATNET_POPS_GEOLOCATE_H_

#include <optional>
#include <vector>

#include "measure/addressing.h"
#include "pops/rdns.h"
#include "util/rng.h"

namespace flatnet {

struct VantagePoint {
  AsId host_as = kInvalidAsId;
  CityIndex city = 0;
};

// RTT oracle over the simulated physical topology: speed-of-light-in-fiber
// great-circle latency between the VP's city and the target interface's
// ground-truth city, plus queueing jitter. Targets whose operator filters
// ICMP never answer.
class PingMesh {
 public:
  PingMesh(const AddressPlan& plan, double icmp_filter_fraction, std::uint64_t seed);

  // Milliseconds, or nullopt when the target does not answer pings.
  std::optional<double> PingMs(const VantagePoint& vp, Ipv4Address target, Rng& rng) const;

 private:
  const AddressPlan& plan_;
  Bitset filtered_;  // per AS: drops ICMP
};

class Geolocator {
 public:
  // `rdns` may be null (no hostname hints). VPs are deployed in access
  // networks across the city database, mirroring the RIPE Atlas footprint:
  // dense in well-connected markets, absent from some cities.
  Geolocator(const World& world, const AddressPlan& plan, const PingMesh& mesh,
             const RdnsDatabase* rdns, std::uint64_t seed);

  // Geolocates `addr`, owned by `owner`. Returns the confirmed city or
  // nullopt (no candidate confirmed — the conservative failure mode).
  std::optional<CityIndex> Locate(Ipv4Address addr, AsId owner) const;

  std::size_t vantage_point_count() const { return vps_.size(); }

  // Candidate cities considered for (addr, owner) — exposed for tests.
  std::vector<CityIndex> Candidates(Ipv4Address addr, AsId owner) const;

 private:
  const World& world_;
  const AddressPlan& plan_;
  const PingMesh& mesh_;
  const RdnsDatabase* rdns_;
  std::vector<VantagePoint> vps_;
  // City -> indices into vps_.
  std::vector<std::vector<std::uint32_t>> vps_by_city_;
  mutable Rng rng_;
};

struct GeolocationScore {
  std::size_t attempted = 0;
  std::size_t answered = 0;  // pipeline produced a city
  std::size_t correct = 0;   // and it matches ground truth
  double Coverage() const;
  double Precision() const;
};

// Runs the pipeline over a sample of border interfaces and scores it
// against the address plan's ground truth.
GeolocationScore ScoreGeolocation(const World& world, const AddressPlan& plan,
                                  const Geolocator& geolocator, std::size_t sample,
                                  std::uint64_t seed);

}  // namespace flatnet

#endif  // FLATNET_POPS_GEOLOCATE_H_
