#include "serve/protocol.h"

#include <algorithm>

#include "util/strings.h"

namespace flatnet::serve {
namespace {

Asn AsnField(const Json& value, const char* key) {
  std::uint64_t raw;
  try {
    raw = value.AsU64();
  } catch (const Error&) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        StrFormat("'%s' must be a non-negative integer ASN", key));
  }
  if (raw == 0 || raw > 0xffffffffULL) {
    throw ProtocolError(ErrorCode::kBadRequest, StrFormat("'%s' is out of ASN range", key));
  }
  return static_cast<Asn>(raw);
}

std::vector<Asn> AsnListField(const Json& value, const char* key) {
  if (value.type() != Json::Type::kArray) {
    throw ProtocolError(ErrorCode::kBadRequest, StrFormat("'%s' must be an array", key));
  }
  std::vector<Asn> asns;
  asns.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) asns.push_back(AsnField(value[i], key));
  std::sort(asns.begin(), asns.end());
  asns.erase(std::unique(asns.begin(), asns.end()), asns.end());
  return asns;
}

PeerLockMode LockModeField(const Json& value) {
  const std::string* text = nullptr;
  try {
    text = &value.AsString();
  } catch (const Error&) {
  }
  if (text != nullptr) {
    if (*text == "full") return PeerLockMode::kFull;
    if (*text == "direct_only") return PeerLockMode::kDirectOnly;
  }
  throw ProtocolError(ErrorCode::kBadRequest, "'lock_mode' must be 'full' or 'direct_only'");
}

ReachMode ModeField(const Json& value) {
  const std::string* text = nullptr;
  try {
    text = &value.AsString();
  } catch (const Error&) {
  }
  if (text != nullptr) {
    if (*text == "full") return ReachMode::kFull;
    if (*text == "provider_free") return ReachMode::kProviderFree;
    if (*text == "tier1_free") return ReachMode::kTier1Free;
    if (*text == "hierarchy_free") return ReachMode::kHierarchyFree;
  }
  throw ProtocolError(
      ErrorCode::kBadRequest,
      "'mode' must be one of full|provider_free|tier1_free|hierarchy_free");
}

// "full" names no stored sweep column, so `metric` takes the other three
// ReachMode spellings only.
ReachMode MetricField(const Json& value) {
  const std::string* text = nullptr;
  try {
    text = &value.AsString();
  } catch (const Error&) {
  }
  if (text != nullptr) {
    if (*text == "provider_free") return ReachMode::kProviderFree;
    if (*text == "tier1_free") return ReachMode::kTier1Free;
    if (*text == "hierarchy_free") return ReachMode::kHierarchyFree;
  }
  throw ProtocolError(ErrorCode::kBadRequest,
                      "'metric' must be one of provider_free|tier1_free|hierarchy_free");
}

// Scenario slugs mirror flatnet_leaksim's --lock spellings plus
// "hierarchy" for the restricted-announcement scenario.
LeakScenario ScenarioField(const Json& value) {
  const std::string* text = nullptr;
  try {
    text = &value.AsString();
  } catch (const Error&) {
  }
  if (text != nullptr) {
    if (*text == "none") return LeakScenario::kAnnounceAll;
    if (*text == "t1") return LeakScenario::kAnnounceAllLockT1;
    if (*text == "t1t2") return LeakScenario::kAnnounceAllLockT1T2;
    if (*text == "global") return LeakScenario::kAnnounceAllLockGlobal;
    if (*text == "hierarchy") return LeakScenario::kAnnounceHierarchyOnly;
  }
  throw ProtocolError(ErrorCode::kBadRequest,
                      "'scenario' must be one of none|t1|t1t2|global|hierarchy");
}

std::vector<double> QuantilesField(const Json& value) {
  if (value.type() != Json::Type::kArray || value.size() == 0 || value.size() > 32) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "'q' must be an array of 1 to 32 quantiles");
  }
  std::vector<double> quantiles;
  quantiles.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    double q;
    try {
      q = value[i].AsNumber();
    } catch (const Error&) {
      throw ProtocolError(ErrorCode::kBadRequest, "'q' entries must be numbers");
    }
    if (!(q >= 0.0 && q <= 1.0)) {
      throw ProtocolError(ErrorCode::kBadRequest, "'q' entries must be in [0, 1]");
    }
    quantiles.push_back(q);
  }
  return quantiles;
}

// Scenario slugs mirror failsim::ToString / flatnet_failsim's --scenarios
// spellings.
failsim::FailScenario FailScenarioField(const Json& value) {
  const std::string* text = nullptr;
  try {
    text = &value.AsString();
  } catch (const Error&) {
  }
  if (text != nullptr) {
    if (*text == "single_as") return failsim::FailScenario::kSingleAs;
    if (*text == "tier1") return failsim::FailScenario::kTier1;
    if (*text == "hegemony_cascade") return failsim::FailScenario::kHegemonyCascade;
    if (*text == "link_set") return failsim::FailScenario::kLinkSet;
  }
  throw ProtocolError(ErrorCode::kBadRequest,
                      "'scenario' must be one of single_as|tier1|hegemony_cascade|link_set");
}

FailColumn FailColumnField(const Json& value) {
  const std::string* text = nullptr;
  try {
    text = &value.AsString();
  } catch (const Error&) {
  }
  if (text != nullptr) {
    if (*text == "loss_ases") return FailColumn::kLossAses;
    if (*text == "disconnected") return FailColumn::kDisconnected;
    if (*text == "loss_users") return FailColumn::kLossUsers;
  }
  throw ProtocolError(ErrorCode::kBadRequest,
                      "'column' must be one of loss_ases|disconnected|loss_users");
}

LeakModel ModelField(const Json& value) {
  const std::string* text = nullptr;
  try {
    text = &value.AsString();
  } catch (const Error&) {
  }
  if (text != nullptr) {
    if (*text == "reannounce") return LeakModel::kReannounce;
    if (*text == "originate") return LeakModel::kOriginate;
  }
  throw ProtocolError(ErrorCode::kBadRequest, "'model' must be 'reannounce' or 'originate'");
}

void AppendAsnList(std::string& key, const char* tag, const std::vector<Asn>& asns) {
  if (asns.empty()) return;
  key += '|';
  key += tag;
  key += '=';
  for (std::size_t i = 0; i < asns.size(); ++i) {
    if (i > 0) key += ',';
    key += std::to_string(asns[i]);
  }
}

}  // namespace

const char* ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownOp: return "unknown_op";
    case ErrorCode::kUnknownAsn: return "unknown_asn";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

const char* ToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kReach: return "reach";
    case QueryKind::kReliance: return "reliance";
    case QueryKind::kLeak: return "leak";
    case QueryKind::kStatus: return "status";
    case QueryKind::kTop: return "top";
    case QueryKind::kLeakDist: return "leakdist";
    case QueryKind::kMetrics: return "metrics";
    case QueryKind::kDebug: return "debug";
    case QueryKind::kHegemony: return "hegemony";
    case QueryKind::kFailure: return "failure";
  }
  return "status";
}

const char* ToString(FailColumn column) {
  switch (column) {
    case FailColumn::kLossAses: return "loss_ases";
    case FailColumn::kDisconnected: return "disconnected";
    case FailColumn::kLossUsers: return "loss_users";
  }
  return "loss_ases";
}

const char* ToString(ReachMode mode) {
  switch (mode) {
    case ReachMode::kFull: return "full";
    case ReachMode::kProviderFree: return "provider_free";
    case ReachMode::kTier1Free: return "tier1_free";
    case ReachMode::kHierarchyFree: return "hierarchy_free";
  }
  return "hierarchy_free";
}

Request ParseRequest(std::string_view line) {
  Json doc;
  try {
    doc = Json::Parse(line);
  } catch (const ParseError& e) {
    throw ProtocolError(ErrorCode::kBadRequest, std::string("malformed JSON: ") + e.what());
  }
  return RequestFromJson(doc);
}

Request RequestFromJson(const Json& doc) {
  if (doc.type() != Json::Type::kObject) {
    throw ProtocolError(ErrorCode::kBadRequest, "request must be a JSON object");
  }
  const Json::Object& object = doc.AsObject();

  auto op_it = object.find("op");
  if (op_it == object.end() || op_it->second.type() != Json::Type::kString) {
    throw ProtocolError(ErrorCode::kBadRequest, "missing string field 'op'");
  }
  const std::string& op = op_it->second.AsString();

  Request request;
  if (op == "reach") {
    request.kind = QueryKind::kReach;
  } else if (op == "reliance") {
    request.kind = QueryKind::kReliance;
  } else if (op == "leak") {
    request.kind = QueryKind::kLeak;
  } else if (op == "status") {
    request.kind = QueryKind::kStatus;
  } else if (op == "top") {
    request.kind = QueryKind::kTop;
  } else if (op == "leakdist") {
    request.kind = QueryKind::kLeakDist;
  } else if (op == "metrics") {
    request.kind = QueryKind::kMetrics;
  } else if (op == "debug") {
    request.kind = QueryKind::kDebug;
  } else if (op == "hegemony") {
    request.kind = QueryKind::kHegemony;
  } else if (op == "failure") {
    request.kind = QueryKind::kFailure;
  } else {
    throw ProtocolError(ErrorCode::kUnknownOp, "unknown op '" + op + "'");
  }

  bool have_origin = false;
  bool have_victim = false;
  bool have_leaker = false;
  for (const auto& [key, value] : object) {
    if (key == "op") continue;
    if (key == "id") {
      request.id = value;
      continue;
    }
    if (key == "timing") {
      if (value.type() != Json::Type::kBool) {
        throw ProtocolError(ErrorCode::kBadRequest, "'timing' must be a boolean");
      }
      request.timing = value.AsBool();
      continue;
    }
    if (key == "deadline_ms" &&
        (request.kind == QueryKind::kReach || request.kind == QueryKind::kReliance ||
         request.kind == QueryKind::kLeak)) {
      std::uint64_t ms;
      try {
        ms = value.AsU64();
      } catch (const Error&) {
        throw ProtocolError(ErrorCode::kBadRequest,
                            "'deadline_ms' must be a positive integer");
      }
      if (ms == 0 || ms > 3'600'000) {
        throw ProtocolError(ErrorCode::kBadRequest,
                            "'deadline_ms' must be in [1, 3600000]");
      }
      request.deadline_ms = static_cast<std::int64_t>(ms);
      continue;
    }
    bool handled = false;
    switch (request.kind) {
      case QueryKind::kReach:
        if (key == "origin") {
          request.origin = AsnField(value, "origin");
          have_origin = handled = true;
        } else if (key == "mode") {
          request.mode = ModeField(value);
          handled = true;
        } else if (key == "excluded") {
          request.excluded = AsnListField(value, "excluded");
          handled = true;
        } else if (key == "peer_locked") {
          request.peer_locked = AsnListField(value, "peer_locked");
          handled = true;
        } else if (key == "lock_mode") {
          request.lock_mode = LockModeField(value);
          handled = true;
        }
        break;
      case QueryKind::kReliance:
        if (key == "origin") {
          request.origin = AsnField(value, "origin");
          have_origin = handled = true;
        } else if (key == "k") {
          std::uint64_t k;
          try {
            k = value.AsU64();
          } catch (const Error&) {
            throw ProtocolError(ErrorCode::kBadRequest, "'k' must be a positive integer");
          }
          if (k == 0 || k > 100'000) {
            throw ProtocolError(ErrorCode::kBadRequest, "'k' must be in [1, 100000]");
          }
          request.top_k = static_cast<std::size_t>(k);
          handled = true;
        }
        break;
      case QueryKind::kLeak:
        if (key == "victim") {
          request.victim = AsnField(value, "victim");
          have_victim = handled = true;
        } else if (key == "leaker") {
          request.leaker = AsnField(value, "leaker");
          have_leaker = handled = true;
        } else if (key == "model") {
          request.model = ModelField(value);
          handled = true;
        } else if (key == "peer_locked") {
          request.peer_locked = AsnListField(value, "peer_locked");
          handled = true;
        } else if (key == "lock_mode") {
          request.lock_mode = LockModeField(value);
          handled = true;
        }
        break;
      case QueryKind::kTop:
        if (key == "k") {
          std::uint64_t k;
          try {
            k = value.AsU64();
          } catch (const Error&) {
            throw ProtocolError(ErrorCode::kBadRequest, "'k' must be a positive integer");
          }
          if (k == 0 || k > 100'000) {
            throw ProtocolError(ErrorCode::kBadRequest, "'k' must be in [1, 100000]");
          }
          request.top_k = static_cast<std::size_t>(k);
          handled = true;
        } else if (key == "metric") {
          request.metric = MetricField(value);
          handled = true;
        }
        break;
      case QueryKind::kLeakDist:
        if (key == "victim") {
          request.victim = AsnField(value, "victim");
          have_victim = handled = true;
        } else if (key == "scenario") {
          request.scenario = ScenarioField(value);
          handled = true;
        } else if (key == "lock_mode") {
          request.lock_mode = LockModeField(value);
          handled = true;
        } else if (key == "model") {
          request.model = ModelField(value);
          handled = true;
        } else if (key == "q") {
          request.quantiles = QuantilesField(value);
          handled = true;
        }
        break;
      case QueryKind::kMetrics:
        if (key == "format") {
          const std::string* text = nullptr;
          try {
            text = &value.AsString();
          } catch (const Error&) {
          }
          if (text != nullptr && *text == "json") {
            request.prometheus = false;
          } else if (text != nullptr && *text == "prometheus") {
            request.prometheus = true;
          } else {
            throw ProtocolError(ErrorCode::kBadRequest,
                                "'format' must be 'json' or 'prometheus'");
          }
          handled = true;
        }
        break;
      case QueryKind::kDebug:
        if (key == "n") {
          std::uint64_t n;
          try {
            n = value.AsU64();
          } catch (const Error&) {
            throw ProtocolError(ErrorCode::kBadRequest, "'n' must be a positive integer");
          }
          if (n == 0 || n > 100'000) {
            throw ProtocolError(ErrorCode::kBadRequest, "'n' must be in [1, 100000]");
          }
          request.debug_n = static_cast<std::size_t>(n);
          handled = true;
        }
        break;
      case QueryKind::kHegemony:
        if (key == "origin") {
          request.origin = AsnField(value, "origin");
          have_origin = handled = true;
        } else if (key == "k") {
          std::uint64_t k;
          try {
            k = value.AsU64();
          } catch (const Error&) {
            throw ProtocolError(ErrorCode::kBadRequest, "'k' must be a positive integer");
          }
          if (k == 0 || k > 100'000) {
            throw ProtocolError(ErrorCode::kBadRequest, "'k' must be in [1, 100000]");
          }
          request.top_k = static_cast<std::size_t>(k);
          handled = true;
        }
        break;
      case QueryKind::kFailure:
        if (key == "origin") {
          request.origin = AsnField(value, "origin");
          have_origin = handled = true;
        } else if (key == "scenario") {
          request.fail_scenario = FailScenarioField(value);
          handled = true;
        } else if (key == "column") {
          request.fail_column = FailColumnField(value);
          handled = true;
        } else if (key == "q") {
          request.quantiles = QuantilesField(value);
          handled = true;
        }
        break;
      case QueryKind::kStatus:
        break;
    }
    if (!handled) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          StrFormat("unknown field '%s' for op '%s'", key.c_str(), op.c_str()));
    }
  }

  switch (request.kind) {
    case QueryKind::kReach:
    case QueryKind::kReliance:
    case QueryKind::kHegemony:
    case QueryKind::kFailure:
      if (!have_origin) {
        throw ProtocolError(ErrorCode::kBadRequest, "missing required field 'origin'");
      }
      break;
    case QueryKind::kLeak:
      if (!have_victim || !have_leaker) {
        throw ProtocolError(ErrorCode::kBadRequest,
                            "leak requires both 'victim' and 'leaker'");
      }
      if (request.victim == request.leaker) {
        throw ProtocolError(ErrorCode::kBadRequest, "victim and leaker must differ");
      }
      break;
    case QueryKind::kLeakDist:
      if (!have_victim) {
        throw ProtocolError(ErrorCode::kBadRequest, "missing required field 'victim'");
      }
      break;
    case QueryKind::kStatus:
    case QueryKind::kTop:
    case QueryKind::kMetrics:
    case QueryKind::kDebug:
      break;
  }
  return request;
}

std::string CacheKey(const Request& request) {
  std::string key;
  switch (request.kind) {
    case QueryKind::kStatus:
    case QueryKind::kTop:
    case QueryKind::kLeakDist:
    case QueryKind::kMetrics:
    case QueryKind::kDebug:
    case QueryKind::kHegemony:
    case QueryKind::kFailure:
      return key;  // answered inline, never cached
    case QueryKind::kReach:
      key = "reach|o=";
      key += std::to_string(request.origin);
      key += "|m=";
      key += ToString(request.mode);
      AppendAsnList(key, "x", request.excluded);
      if (!request.peer_locked.empty()) {
        AppendAsnList(key, "pl", request.peer_locked);
        key += "|lk=";
        key += request.lock_mode == PeerLockMode::kFull ? "full" : "direct_only";
      }
      return key;
    case QueryKind::kReliance:
      key = "reliance|o=";
      key += std::to_string(request.origin);
      key += "|k=";
      key += std::to_string(request.top_k);
      return key;
    case QueryKind::kLeak:
      key = "leak|v=";
      key += std::to_string(request.victim);
      key += "|l=";
      key += std::to_string(request.leaker);
      key += "|model=";
      key += request.model == LeakModel::kReannounce ? "reannounce" : "originate";
      if (!request.peer_locked.empty()) {
        AppendAsnList(key, "pl", request.peer_locked);
        key += "|lk=";
        key += request.lock_mode == PeerLockMode::kFull ? "full" : "direct_only";
      }
      return key;
  }
  return key;
}

std::string OkResponse(const Json& id, const std::string& result_json, bool cached) {
  return OkResponse(id, result_json, cached, nullptr);
}

std::string OkResponse(const Json& id, const std::string& result_json, bool cached,
                       const std::string* timing_json) {
  // Hand-assembled so the cached `result` bytes embed verbatim; key order
  // matches Json::Dump's sorted-key output for consistency ("timing" sorts
  // after "result", so the opt-in field appends without reordering — and
  // without it the bytes are identical to the pre-timing encoder).
  std::string out = "{\"cached\":";
  out += cached ? "true" : "false";
  out += ",\"id\":";
  out += id.Dump();
  out += ",\"ok\":true,\"result\":";
  out += result_json;
  if (timing_json != nullptr) {
    out += ",\"timing\":";
    out += *timing_json;
  }
  out += '}';
  return out;
}

std::string ErrorResponse(const Json& id, ErrorCode code, const std::string& message) {
  Json error = Json::MakeObject();
  error["code"] = ToString(code);
  error["message"] = message;
  Json doc = Json::MakeObject();
  doc["error"] = std::move(error);
  doc["id"] = id;
  doc["ok"] = false;
  return doc.Dump();
}

}  // namespace flatnet::serve
