// Wire protocol for the resident analysis service (flatnet_serve).
//
// Transport is line-delimited JSON over TCP: one request object per line,
// one response object per line. Requests carry an `op` plus op-specific
// parameters; responses echo the client-chosen `id` verbatim so a pipelined
// client can match them out of order.
//
// Request grammar (unknown keys are rejected so typos fail loudly):
//
//   {"op":"reach","origin":<asn>,            hierarchy-free reachability
//    "mode":"full"|"provider_free"|"tier1_free"|"hierarchy_free",
//    "excluded":[<asn>...],                  extra ASes removed from the
//    "peer_locked":[<asn>...],               subgraph; defensive locking
//    "lock_mode":"full"|"direct_only",
//    "id":<any>,"deadline_ms":<n>}
//   {"op":"reliance","origin":<asn>,"k":<n>, top-k transit reliance
//    "id":<any>,"deadline_ms":<n>}
//   {"op":"leak","victim":<asn>,"leaker":<asn>,
//    "model":"reannounce"|"originate",
//    "peer_locked":[<asn>...],"lock_mode":...,
//    "id":<any>,"deadline_ms":<n>}
//   {"op":"top","k":<n>,                     top-k origins from the loaded
//    "metric":"provider_free"|"tier1_free"|  sweep store (microseconds —
//             "hierarchy_free",              precomputed rankings, no BFS)
//    "id":<any>}
//   {"op":"leakdist","victim":<asn>,         detour-fraction percentiles
//    "scenario":"none"|"t1"|"t1t2"|          from the loaded leak-campaign
//               "global"|"hierarchy",        store (inline, no simulation)
//    "lock_mode":"full"|"direct_only",
//    "model":"reannounce"|"originate",
//    "q":[<quantile in [0,1]>...],
//    "id":<any>}
//   {"op":"hegemony","origin":<asn>,         top-k transit ASes by hegemony
//    "k":<n>,"id":<any>}                     score for a fail-store origin
//                                            (rankings precomputed at attach
//                                            time; inline, no propagation)
//   {"op":"failure","origin":<asn>,          damage percentiles from the
//    "scenario":"single_as"|"tier1"|         loaded failure-campaign store
//               "hegemony_cascade"|          (inline, no simulation)
//               "link_set",
//    "column":"loss_ases"|"disconnected"|"loss_users",
//    "q":[<quantile in [0,1]>...],
//    "id":<any>}
//   {"op":"status","id":<any>}               uptime, cache + obs snapshot
//   {"op":"metrics","id":<any>,              full metrics registry snapshot
//    "format":"json"|"prometheus"}           (inline; "prometheus" wraps the
//                                            text exposition in a string)
//   {"op":"debug","id":<any>,"n":<max>}      newest flight-recorder events
//                                            (obs/recorder.h; inline)
//
// Every op additionally accepts `"timing":true` — an opt-in request for
// the server-side phase timeline. It never affects the result (or the
// cache key); the response merely gains a `timing` field.
//
// Responses:
//   {"cached":<bool>,"id":<echo>,"ok":true,"result":{...}}
//   {"cached":...,"id":...,"ok":true,"result":{...},"timing":{"phases":
//    [{"ms":<n>,"name":"parse"},...],"server_ms":<n>}}   (timing requested)
//   {"error":{"code":"<code>","message":"..."},"id":<echo>,"ok":false}
//
// The `result` object of a successful response is embedded verbatim from
// the computation (or the result cache), so a cached reply is byte-for-byte
// identical to the cold one — and a request without `timing` produces a
// response byte-identical to one from a server built before tracing
// existed. Error codes: bad_request, unknown_op, unknown_asn, overloaded,
// deadline_exceeded, unavailable, internal. `unavailable` is raised by the
// fleet router (fleet/router.h) when the shard owning a request's slice of
// origin space is out of the ring; a single server never emits it.
#ifndef FLATNET_SERVE_PROTOCOL_H_
#define FLATNET_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/leak.h"
#include "bgp/policy.h"
#include "core/leak_scenarios.h"
#include "failsim/store.h"
#include "util/error.h"
#include "util/json.h"

namespace flatnet::serve {

enum class ErrorCode : std::uint8_t {
  kBadRequest,
  kUnknownOp,
  kUnknownAsn,
  kOverloaded,
  kDeadlineExceeded,
  kUnavailable,
  kInternal,
};

const char* ToString(ErrorCode code);

// A request that cannot be served as asked; the dispatcher renders it as a
// structured error response instead of tearing the connection down.
class ProtocolError : public Error {
 public:
  ProtocolError(ErrorCode code, const std::string& message)
      : Error(message), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

enum class QueryKind : std::uint8_t {
  kReach,
  kReliance,
  kLeak,
  kStatus,
  kTop,
  kLeakDist,
  kMetrics,
  kDebug,
  kHegemony,
  kFailure,
};

inline constexpr std::size_t kNumQueryKinds = 10;

const char* ToString(QueryKind kind);

// Which baseline exclusion set a reach query starts from (§6's nested
// metrics); user-supplied `excluded` ASes are unioned on top.
enum class ReachMode : std::uint8_t {
  kFull,           // no baseline exclusion
  kProviderFree,   // reach(o, I \ Po)
  kTier1Free,      // reach(o, I \ Po \ T1)
  kHierarchyFree,  // reach(o, I \ Po \ T1 \ T2)
};

const char* ToString(ReachMode mode);

// Which per-trial damage column a `failure` query reports percentiles of.
enum class FailColumn : std::uint8_t {
  kLossAses,      // collateral loss fraction of baseline
  kDisconnected,  // absolute ASes cut off (knocked-out ASes included)
  kLossUsers,     // user-weighted collateral fraction (has_users stores)
};

const char* ToString(FailColumn column);

// One parsed, canonicalized request. AS lists are sorted and deduplicated
// at parse time so equal queries produce equal cache keys.
struct Request {
  QueryKind kind = QueryKind::kStatus;
  Json id;                       // echoed verbatim; null when absent
  std::int64_t deadline_ms = 0;  // 0 = use the server default
  // Opt-in phase timeline in the response (any op); never part of the
  // cache key — timing describes this request, not the result.
  bool timing = false;
  // metrics: render the Prometheus text exposition instead of JSON.
  bool prometheus = false;
  // debug: newest flight-recorder events to return.
  std::size_t debug_n = 256;

  // reach / reliance
  Asn origin = 0;
  // reach
  ReachMode mode = ReachMode::kHierarchyFree;
  std::vector<Asn> excluded;
  std::vector<Asn> peer_locked;
  PeerLockMode lock_mode = PeerLockMode::kFull;
  // reliance / top
  std::size_t top_k = 10;
  // top: which sweep column to rank by (reuses ReachMode minus "full",
  // which names no stored column and is rejected at parse time).
  ReachMode metric = ReachMode::kHierarchyFree;
  // leak / leakdist
  Asn victim = 0;
  Asn leaker = 0;
  LeakModel model = LeakModel::kReannounce;
  // leakdist: which campaign cell and which percentiles to report.
  // Empty `quantiles` means the server default (0.5, 0.9, 0.99).
  LeakScenario scenario = LeakScenario::kAnnounceAll;
  std::vector<double> quantiles;
  // failure: which failure-campaign cell and which damage column.
  failsim::FailScenario fail_scenario = failsim::FailScenario::kSingleAs;
  FailColumn fail_column = FailColumn::kLossAses;
};

// Parses one request line (JSON text). Throws ProtocolError on malformed
// JSON, unknown op, unknown/duplicate keys, or out-of-range values.
Request ParseRequest(std::string_view line);

// Same, from an already-parsed document (lets the dispatcher recover the
// `id` of a semantically invalid request for its error response).
Request RequestFromJson(const Json& doc);

// Canonical result-cache key: everything that affects the result — kind,
// origin(s), canonicalized option sets — and nothing that does not (id,
// deadline, timing). Empty for status, top, leakdist, metrics, debug,
// hegemony, and failure, which are answered inline and never cached.
std::string CacheKey(const Request& request);

// Response encoders. `result_json` is a compact JSON object embedded
// verbatim so cached and cold replies serialize identically. The non-null
// `timing_json` overload appends a `timing` field after `result` (keys
// stay sorted); responses without timing are byte-identical to the
// two-argument form.
std::string OkResponse(const Json& id, const std::string& result_json, bool cached);
std::string OkResponse(const Json& id, const std::string& result_json, bool cached,
                       const std::string* timing_json);
std::string ErrorResponse(const Json& id, ErrorCode code, const std::string& message);

}  // namespace flatnet::serve

#endif  // FLATNET_SERVE_PROTOCOL_H_
