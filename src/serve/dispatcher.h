// Query execution with admission control for the resident service.
//
// The dispatcher owns the shared immutable Internet, the result cache, and
// a ThreadPool. One request flows: parse → status answered inline → cache
// probe (hit returns the stored payload verbatim) → bounded admission
// (structured `overloaded` error past the high-water mark, so the service
// sheds load instead of queueing without bound) → execution on a pool
// thread under a per-request CancelToken whose deadline covers queue wait
// as well as compute (the propagation engines poll it between phases and
// abandon expired work with `deadline_exceeded`).
//
// Instrumentation: per-endpoint latency histograms
// (serve.<op>.latency_ms), per-op request/error counters
// (serve.<op>.requests / serve.<op>.errors), aggregate
// request/error/overload counters, an inflight gauge, and the cache
// counters from cache.h.
//
// Tracing: a request carrying `"timing":true` (any op) gets a per-phase
// timeline — accept, parse, cache_probe, queue, setup, the propagation
// phases, serialize — attached to its response under `timing`. When a
// slow-query threshold is configured (options or FLATNET_SLOW_QUERY_MS),
// every request is timed and offenders past the threshold are logged with
// their full timeline. With both off, the per-request cost is two
// steady_clock reads and the response bytes are untouched.
#ifndef FLATNET_SERVE_DISPATCHER_H_
#define FLATNET_SERVE_DISPATCHER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/internet.h"
#include "failsim/store.h"
#include "fleet/ring.h"
#include "leaksim/store.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "sweep/store.h"
#include "util/thread_pool.h"

namespace flatnet::serve {

struct DispatcherOptions {
  // Worker threads for query execution; 0 = hardware concurrency.
  std::size_t threads = 0;
  // Admission high-water mark: queries queued or running. At the mark, new
  // queries (cache hits and status excepted) are rejected as `overloaded`.
  std::size_t max_inflight = 64;
  // Result-cache byte budget.
  std::size_t cache_bytes = 64 * 1024 * 1024;
  // Deadline applied when a request does not carry `deadline_ms`; 0 = none.
  std::int64_t default_deadline_ms = 0;
  // Requests slower than this (wall time, admission to response) are logged
  // at warn with their phase timeline and counted in serve.slow_queries.
  // 0 disables; a negative value (the default) defers to the
  // FLATNET_SLOW_QUERY_MS environment variable (unset/invalid = disabled).
  std::int64_t slow_query_ms = -1;
  // Fleet slice identity: this process is shard `shard_index` of
  // `shard_count` under the consistent-hash ring (fleet/ring.h, built from
  // the count alone — every fleet member derives identical ownership).
  // Attach methods then keep only the owned slice of each store's rankings
  // and cells; compute ops are unaffected (every shard holds the full
  // topology, which is what makes failover and hedging possible).
  // shard_count <= 1 means unsharded.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  // Ring vnodes per shard; must match the router's setting.
  std::size_t ring_vnodes = fleet::kDefaultVnodes;
};

class Dispatcher {
 public:
  // `internet` must outlive the dispatcher; queries only read it.
  Dispatcher(const Internet& internet, const DispatcherOptions& options);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // Attaches a loaded sweep store and precomputes the per-column rankings
  // the `top` op serves from (value descending, ASN ascending). Validates
  // the store against this dispatcher's topology — a fingerprint or size
  // mismatch throws and nothing is attached. Call before serving traffic;
  // not synchronized against concurrent Handle().
  void AttachSweepStore(sweep::SweepStore store, const std::string& path);
  bool has_sweep_store() const { return sweep_loaded_; }

  // Attaches a loaded leak-campaign store and pre-sorts every cell's
  // detour fractions so a `leakdist` query is a rank lookup. Validates
  // the store's fingerprint against this topology — a mismatch throws and
  // nothing is attached. Same threading contract as AttachSweepStore.
  void AttachLeakStore(leaksim::LeakStore store, const std::string& path);
  bool has_leak_store() const { return leak_loaded_; }

  // Attaches a loaded failure-campaign store: pre-sorts every cell's
  // damage columns so a `failure` query is a rank lookup, and computes
  // the hegemony ranking for every distinct cell origin so a `hegemony`
  // query is a prefix copy (the scores live on the current topology, not
  // in the store — attach re-derives them deterministically). Validates
  // the store's fingerprint against this topology — a mismatch throws and
  // nothing is attached. Same threading contract as AttachSweepStore.
  void AttachFailStore(failsim::FailStore store, const std::string& path);
  bool has_fail_store() const { return fail_loaded_; }

  // Handles one request line. `done` receives exactly one response line
  // (no trailing newline) — inline for parse errors, cache hits, status,
  // and overload rejections; on a pool thread for computed queries. `done`
  // must be thread-safe against other responses on the same connection.
  void Handle(const std::string& line, std::function<void(std::string)> done);

  // Same, with the moment the request line was received off the wire (the
  // server's read loop passes it) so the timeline's `accept` phase covers
  // socket-to-dispatcher latency. The overload above uses now().
  void Handle(const std::string& line, std::function<void(std::string)> done,
              std::chrono::steady_clock::time_point received_at);

  // Convenience for tests and the loadgen verifier: blocks until the
  // response is ready.
  std::string HandleSync(const std::string& line);

  // Waits until every admitted query has finished (shutdown drain).
  void Drain();

  CacheStats cache_stats() const { return cache_.Stats(); }
  std::int64_t inflight() const { return inflight_.load(std::memory_order_relaxed); }
  const Internet& internet() const { return internet_; }

 private:
  // Runs one parsed query; returns the compact `result` JSON. Throws
  // ProtocolError / CancelledError on failure. `trace` (nullable) receives
  // the setup / propagation / serialize phase marks.
  std::string Execute(const Request& request, const CancelToken* cancel,
                      obs::RequestTrace* trace) const;
  std::string ExecuteReach(const Request& request, const CancelToken* cancel,
                           obs::RequestTrace* trace) const;
  std::string ExecuteReliance(const Request& request, const CancelToken* cancel,
                              obs::RequestTrace* trace) const;
  std::string ExecuteLeak(const Request& request, const CancelToken* cancel,
                          obs::RequestTrace* trace) const;
  std::string ExecuteTop(const Request& request) const;
  std::string ExecuteLeakDist(const Request& request) const;
  std::string ExecuteMetrics(const Request& request) const;
  std::string ExecuteDebug(const Request& request) const;
  std::string ExecuteHegemony(const Request& request) const;
  std::string ExecuteFailure(const Request& request) const;
  std::string StatusResult();

  // Delivers a successful response: attaches the timing field when the
  // request opted in, then applies the slow-query threshold to the full
  // timeline (including the write itself).
  void Respond(const Request& request, const Json& id, const std::string& result,
               bool cached, obs::RequestTrace* trace,
               const std::function<void(std::string)>& done) const;

  AsId ResolveAsn(Asn asn, const char* field) const;
  Bitset ResolveAsnList(const std::vector<Asn>& asns) const;

  // True when this shard owns `id`'s slice of origin space (always true
  // unsharded). Store ops for non-owned keys are rejected naming the owner.
  bool OwnsAsId(AsId id) const;
  // Throws bad_request naming the owning shard when `id` is not owned.
  void RequireOwned(AsId id, const char* op) const;

  const Internet& internet_;
  DispatcherOptions options_;
  // Present when shard_count > 1: the fleet ownership ring.
  std::optional<fleet::Ring> ring_;
  // Resolved slow-query threshold (options / env); <= 0 = disabled.
  std::int64_t slow_query_ms_ = 0;
  ResultCache cache_;
  ThreadPool pool_;
  std::vector<double> users_;  // per-AS populations for leak weighting
  std::atomic<std::int64_t> inflight_{0};
  std::chrono::steady_clock::time_point start_time_;

  // Sweep store state (immutable once attached). One ranking per present
  // column: origins ordered by value descending, ASN ascending, so a
  // `top` query is a k-element prefix copy.
  sweep::SweepStore sweep_store_;
  bool sweep_loaded_ = false;
  std::string sweep_path_;
  std::array<std::vector<AsId>, sweep::kNumSweepColumns> sweep_rankings_;

  // Leak-campaign store state (immutable once attached). One ascending
  // sorted copy of each cell's detour fractions, so a quantile is a
  // single nearest-rank index.
  leaksim::LeakStore leak_store_;
  bool leak_loaded_ = false;
  std::string leak_path_;
  std::vector<std::vector<double>> leak_sorted_;
  // Sharded: whether each cell's victim falls in this shard's slice (the
  // sorted copy above stays empty for cells that do not). Empty unsharded.
  std::vector<char> leak_owned_;

  // Failure-campaign store state (immutable once attached). Each cell's
  // damage columns ascending-sorted for quantile lookups, plus one
  // hegemony ranking per distinct cell origin (score descending, ASN
  // ascending — positive-score ASes only), computed at attach time.
  failsim::FailStore fail_store_;
  bool fail_loaded_ = false;
  std::string fail_path_;
  struct FailSortedCell {
    std::vector<double> loss_ases;
    std::vector<double> disconnected;
    std::vector<double> loss_users;  // empty unless the store has_users
  };
  std::vector<FailSortedCell> fail_sorted_;
  // Sharded: per-cell origin ownership, as leak_owned_ above.
  std::vector<char> fail_owned_;
  struct HegemonyRank {
    std::vector<AsId> ranking;
    std::vector<double> scores;  // parallel to `ranking`
    std::size_t num_viewpoints = 0;
    std::size_t trimmed_each_end = 0;
  };
  std::map<AsId, HegemonyRank> hegemony_rankings_;
};

}  // namespace flatnet::serve

#endif  // FLATNET_SERVE_DISPATCHER_H_
