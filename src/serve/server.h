// TCP front end for the resident analysis service.
//
// One acceptor thread polls the listening socket (100 ms tick) so a stop
// request is noticed promptly; each accepted connection gets a reader
// thread that splits the byte stream into lines and hands them to the
// dispatcher. Responses are written back under a per-connection mutex —
// computed queries complete on pool threads, so replies to one connection
// may interleave across requests (clients match on `id`).
//
// Shutdown (RequestShutdown, typically from a SIGTERM handler — it is a
// single atomic store, safe in signal context) closes the listener, shuts
// down the read side of every connection, joins the readers, drains the
// dispatcher so admitted queries still answer, then closes the sockets.
#ifndef FLATNET_SERVE_SERVER_H_
#define FLATNET_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/dispatcher.h"

namespace flatnet::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  // 0 = let the kernel pick an ephemeral port (read back via port()).
  std::uint16_t port = 0;
  // Lines longer than this are a protocol violation; the connection drops.
  std::size_t max_line_bytes = 1 << 20;
};

class Server {
 public:
  // Binds and listens; throws Error when the socket cannot be set up.
  Server(Dispatcher& dispatcher, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The bound port (resolves port 0 to the kernel's choice).
  std::uint16_t port() const { return port_; }

  // Serves until RequestShutdown; returns after the graceful drain.
  void Run();

  // Async-signal-safe: one relaxed atomic store.
  void RequestShutdown() { stop_.store(true, std::memory_order_relaxed); }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::thread reader;
  };

  void AcceptLoop();
  void ReadLoop(Connection* connection);
  // Serializes whole-line writes on one connection; drops the line when the
  // peer has gone away (the reader notices the close separately).
  void WriteLine(Connection* connection, const std::string& line);

  Dispatcher& dispatcher_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace flatnet::serve

#endif  // FLATNET_SERVE_SERVER_H_
