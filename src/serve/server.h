// TCP front end for the resident analysis service.
//
// One acceptor thread polls the listening socket (100 ms tick) so a stop
// request is noticed promptly; each accepted connection gets a reader
// thread that splits the byte stream into lines and hands them to the
// line handler — the query dispatcher in flatnet_serve, the fleet router
// in flatnet_router. Responses are written back under a per-connection
// mutex — computed queries complete on pool threads, so replies to one
// connection may interleave across requests (clients match on `id`).
//
// Connections whose reader has finished are reaped on the acceptor's next
// tick, so a churny client population does not grow the connection table
// without bound. `max_connections` (0 = unlimited) caps live connections;
// past the cap an accept is answered with one structured `overloaded`
// error line and closed, which a client (or the fleet router) treats as
// backpressure, not as a crash.
//
// Shutdown (RequestShutdown, typically from a SIGTERM handler — it is a
// single atomic store, safe in signal context) closes the listener, shuts
// down the read side of every connection, joins the readers, drains the
// handler via the `drain` callback so admitted queries still answer, then
// closes the sockets.
#ifndef FLATNET_SERVE_SERVER_H_
#define FLATNET_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/dispatcher.h"

namespace flatnet::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  // 0 = let the kernel pick an ephemeral port (read back via port()).
  std::uint16_t port = 0;
  // Lines longer than this are a protocol violation; the connection drops.
  std::size_t max_line_bytes = 1 << 20;
  // Live-connection cap; 0 = unlimited. Excess accepts receive one
  // `overloaded` error line and are closed immediately.
  std::size_t max_connections = 0;
};

class Server {
 public:
  // One request line in, exactly one response line out via the callback
  // (which must be thread-safe against other responses on the same
  // connection). The time point is when the line was received off the wire.
  using LineHandler = std::function<void(const std::string& line,
                                         std::function<void(std::string)> done,
                                         std::chrono::steady_clock::time_point received_at)>;

  // Binds and listens; throws Error when the socket cannot be set up.
  // `drain` (nullable) runs during graceful shutdown after the readers have
  // stopped, before the sockets close.
  Server(LineHandler handler, std::function<void()> drain, const ServerOptions& options);
  // Convenience: serve a dispatcher (drain = Dispatcher::Drain).
  Server(Dispatcher& dispatcher, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The bound port (resolves port 0 to the kernel's choice).
  std::uint16_t port() const { return port_; }

  // Serves until RequestShutdown; returns after the graceful drain.
  void Run();

  // Async-signal-safe: one relaxed atomic store.
  void RequestShutdown() { stop_.store(true, std::memory_order_relaxed); }

 private:
  // Reference-counted so an in-flight `done` callback (held by a pool
  // thread) keeps the fd open after the reader exits and the connection is
  // reaped; the fd closes in the destructor, never earlier, so a reused
  // descriptor can never receive a stale response.
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::thread reader;
    std::atomic<bool> done_reading{false};
    ~Connection();
  };
  using ConnectionPtr = std::shared_ptr<Connection>;

  void AcceptLoop();
  // Joins and forgets connections whose reader has exited. The fd stays
  // open until the last response in flight releases its reference.
  void ReapFinished();
  void ReadLoop(const ConnectionPtr& connection);
  // Serializes whole-line writes on one connection; drops the line when the
  // peer has gone away (the reader notices the close separately).
  static void WriteLine(const ConnectionPtr& connection, const std::string& line);

  LineHandler handler_;
  std::function<void()> drain_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex connections_mu_;
  std::vector<ConnectionPtr> connections_;
};

}  // namespace flatnet::serve

#endif  // FLATNET_SERVE_SERVER_H_
