#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet::serve {
namespace {

void CloseQuietly(int fd) {
  if (fd >= 0) ::close(fd);
}

// Best-effort whole-string send for the pre-connection overload rejection;
// the peer may already be gone, which is fine.
void SendAll(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    ssize_t n = ::send(fd, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

Server::Connection::~Connection() { CloseQuietly(fd); }

Server::Server(LineHandler handler, std::function<void()> drain,
               const ServerOptions& options)
    : handler_(std::move(handler)), drain_(std::move(drain)), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    throw Error(StrFormat("invalid bind address '%s'", options_.bind_address.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    throw Error(StrFormat("bind %s:%u: %s", options_.bind_address.c_str(),
                          static_cast<unsigned>(options_.port), std::strerror(err)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    int err = errno;
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    throw Error(StrFormat("listen: %s", std::strerror(err)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    int err = errno;
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    throw Error(StrFormat("getsockname: %s", std::strerror(err)));
  }
  port_ = ntohs(bound.sin_port);
}

Server::Server(Dispatcher& dispatcher, const ServerOptions& options)
    : Server(
          [&dispatcher](const std::string& line, std::function<void(std::string)> done,
                        std::chrono::steady_clock::time_point received_at) {
            dispatcher.Handle(line, std::move(done), received_at);
          },
          [&dispatcher] { dispatcher.Drain(); }, options) {}

Server::~Server() {
  CloseQuietly(listen_fd_);
  for (auto& connection : connections_) {
    if (connection->reader.joinable()) connection->reader.join();
  }
  connections_.clear();
}

void Server::Run() {
  obs::Log(obs::LogLevel::kInfo, "serve", "server.listening")
      .Kv("address", options_.bind_address)
      .Kv("port", static_cast<unsigned>(port_));
  AcceptLoop();

  // Graceful drain: stop reading new requests, let admitted queries finish
  // and write their responses, then tear the sockets down.
  CloseQuietly(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) ::shutdown(connection->fd, SHUT_RD);
  }
  for (auto& connection : connections_) {
    if (connection->reader.joinable()) connection->reader.join();
  }
  if (drain_) drain_();
  // Dropping the references closes each fd whose responses are all written;
  // a response still in flight holds its own reference.
  connections_.clear();
  obs::Log(obs::LogLevel::kInfo, "serve", "server.stopped");
}

void Server::ReapFinished() {
  std::vector<ConnectionPtr> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done_reading.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock; destruction (and the close) may be deferred past
  // this scope by response callbacks still holding references.
  for (auto& connection : finished) {
    if (connection->reader.joinable()) connection->reader.join();
  }
}

void Server::AcceptLoop() {
  obs::Counter& accepted = obs::GetCounter("serve.connections.accepted");
  obs::Counter& rejected = obs::GetCounter("serve.connections.rejected");
  while (!stop_.load(std::memory_order_relaxed)) {
    ReapFinished();
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      obs::Log(obs::LogLevel::kError, "serve", "server.poll_failed")
          .Kv("error", std::strerror(errno));
      return;
    }
    if (ready == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      obs::Log(obs::LogLevel::kWarn, "serve", "server.accept_failed")
          .Kv("error", std::strerror(errno));
      continue;
    }
    std::size_t live = 0;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      live = connections_.size();
    }
    if (options_.max_connections > 0 && live >= options_.max_connections) {
      // Structured backpressure instead of an unexplained RST: one
      // overloaded error line, then close. The fleet router retries it.
      rejected.Increment();
      SendAll(fd, ErrorResponse(Json(), ErrorCode::kOverloaded,
                                StrFormat("connection limit reached (%zu connections)",
                                          options_.max_connections)) +
                      "\n");
      CloseQuietly(fd);
      obs::Log(obs::LogLevel::kWarn, "serve", "server.connection_rejected")
          .Kv("live", static_cast<std::uint64_t>(live))
          .Kv("max", static_cast<std::uint64_t>(options_.max_connections));
      continue;
    }
    accepted.Increment();
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(connection);
    }
    // The reader captures a plain copy of the shared_ptr; ReapFinished
    // joins the thread before the vector's reference is dropped, and any
    // response in flight holds its own.
    connection->reader = std::thread([this, connection] { ReadLoop(connection); });
  }
}

void Server::ReadLoop(const ConnectionPtr& connection) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, error, or shutdown(SHUT_RD)
    // One receive timestamp covers every line in the chunk: the timeline's
    // `accept` phase then measures socket-to-dispatcher latency, including
    // time spent behind earlier lines of a pipelined batch.
    auto received_at = std::chrono::steady_clock::now();
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handler_(
          line,
          [connection](std::string response) { WriteLine(connection, response); },
          received_at);
    }
    buffer.erase(0, start);
    if (buffer.size() > options_.max_line_bytes) {
      obs::Log(obs::LogLevel::kWarn, "serve", "server.line_too_long")
          .Kv("bytes", static_cast<std::uint64_t>(buffer.size()));
      break;
    }
  }
  connection->done_reading.store(true, std::memory_order_release);
}

void Server::WriteLine(const ConnectionPtr& connection, const std::string& line) {
  std::lock_guard<std::mutex> lock(connection->write_mu);
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(connection->fd, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer gone; the reader will observe the close
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace flatnet::serve
