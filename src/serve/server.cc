#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/log.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet::serve {
namespace {

void CloseQuietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

Server::Server(Dispatcher& dispatcher, const ServerOptions& options)
    : dispatcher_(dispatcher), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    throw Error(StrFormat("invalid bind address '%s'", options_.bind_address.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    throw Error(StrFormat("bind %s:%u: %s", options_.bind_address.c_str(),
                          static_cast<unsigned>(options_.port), std::strerror(err)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    int err = errno;
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    throw Error(StrFormat("listen: %s", std::strerror(err)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    int err = errno;
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    throw Error(StrFormat("getsockname: %s", std::strerror(err)));
  }
  port_ = ntohs(bound.sin_port);
}

Server::~Server() {
  CloseQuietly(listen_fd_);
  for (auto& connection : connections_) {
    if (connection->reader.joinable()) connection->reader.join();
    CloseQuietly(connection->fd);
  }
}

void Server::Run() {
  obs::Log(obs::LogLevel::kInfo, "serve", "server.listening")
      .Kv("address", options_.bind_address)
      .Kv("port", static_cast<unsigned>(port_));
  AcceptLoop();

  // Graceful drain: stop reading new requests, let admitted queries finish
  // and write their responses, then tear the sockets down.
  CloseQuietly(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) ::shutdown(connection->fd, SHUT_RD);
  }
  for (auto& connection : connections_) {
    if (connection->reader.joinable()) connection->reader.join();
  }
  dispatcher_.Drain();
  for (auto& connection : connections_) {
    CloseQuietly(connection->fd);
    connection->fd = -1;
  }
  connections_.clear();
  obs::Log(obs::LogLevel::kInfo, "serve", "server.stopped");
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      obs::Log(obs::LogLevel::kError, "serve", "server.poll_failed")
          .Kv("error", std::strerror(errno));
      return;
    }
    if (ready == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      obs::Log(obs::LogLevel::kWarn, "serve", "server.accept_failed")
          .Kv("error", std::strerror(errno));
      continue;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(std::move(connection));
    }
    raw->reader = std::thread([this, raw] { ReadLoop(raw); });
  }
}

void Server::ReadLoop(Connection* connection) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer closed, error, or shutdown(SHUT_RD)
    // One receive timestamp covers every line in the chunk: the timeline's
    // `accept` phase then measures socket-to-dispatcher latency, including
    // time spent behind earlier lines of a pipelined batch.
    auto received_at = std::chrono::steady_clock::now();
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      dispatcher_.Handle(
          line,
          [this, connection](std::string response) { WriteLine(connection, response); },
          received_at);
    }
    buffer.erase(0, start);
    if (buffer.size() > options_.max_line_bytes) {
      obs::Log(obs::LogLevel::kWarn, "serve", "server.line_too_long")
          .Kv("bytes", static_cast<std::uint64_t>(buffer.size()));
      return;
    }
  }
}

void Server::WriteLine(Connection* connection, const std::string& line) {
  std::lock_guard<std::mutex> lock(connection->write_mu);
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(connection->fd, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer gone; the reader will observe the close
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace flatnet::serve
