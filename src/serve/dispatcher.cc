#include "serve/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <numeric>
#include <utility>

#include <cstdlib>

#include "bgp/hegemony.h"
#include "bgp/propagation.h"
#include "bgp/reliance.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/reqtrace.h"
#include "util/env.h"
#include "util/strings.h"

namespace flatnet::serve {
namespace {

struct ServeCounters {
  obs::Counter& requests = obs::GetCounter("serve.requests");
  obs::Counter& errors = obs::GetCounter("serve.errors");
  obs::Counter& overloaded = obs::GetCounter("serve.overloaded");
  obs::Counter& deadline_exceeded = obs::GetCounter("serve.deadline_exceeded");
  obs::Counter& slow_queries = obs::GetCounter("serve.slow_queries");
  obs::Gauge& inflight = obs::GetGauge("serve.inflight");
};

ServeCounters& Counters() {
  static ServeCounters counters;
  return counters;
}

obs::Histogram& LatencyHistogram(QueryKind kind) {
  static const std::vector<double> bounds{0.1,  0.3,   1.0,   3.0,    10.0,
                                          30.0, 100.0, 300.0, 1000.0, 3000.0};
  static obs::Histogram* histograms[kNumQueryKinds] = {
      &obs::GetHistogram("serve.reach.latency_ms", bounds),
      &obs::GetHistogram("serve.reliance.latency_ms", bounds),
      &obs::GetHistogram("serve.leak.latency_ms", bounds),
      &obs::GetHistogram("serve.status.latency_ms", bounds),
      &obs::GetHistogram("serve.top.latency_ms", bounds),
      &obs::GetHistogram("serve.leakdist.latency_ms", bounds),
      &obs::GetHistogram("serve.metrics.latency_ms", bounds),
      &obs::GetHistogram("serve.debug.latency_ms", bounds),
      &obs::GetHistogram("serve.hegemony.latency_ms", bounds),
      &obs::GetHistogram("serve.failure.latency_ms", bounds),
  };
  return *histograms[static_cast<std::size_t>(kind)];
}

obs::Counter& OpRequests(QueryKind kind) {
  static obs::Counter* counters[kNumQueryKinds] = {
      &obs::GetCounter("serve.reach.requests"),
      &obs::GetCounter("serve.reliance.requests"),
      &obs::GetCounter("serve.leak.requests"),
      &obs::GetCounter("serve.status.requests"),
      &obs::GetCounter("serve.top.requests"),
      &obs::GetCounter("serve.leakdist.requests"),
      &obs::GetCounter("serve.metrics.requests"),
      &obs::GetCounter("serve.debug.requests"),
      &obs::GetCounter("serve.hegemony.requests"),
      &obs::GetCounter("serve.failure.requests"),
  };
  return *counters[static_cast<std::size_t>(kind)];
}

obs::Counter& OpErrors(QueryKind kind) {
  static obs::Counter* counters[kNumQueryKinds] = {
      &obs::GetCounter("serve.reach.errors"),
      &obs::GetCounter("serve.reliance.errors"),
      &obs::GetCounter("serve.leak.errors"),
      &obs::GetCounter("serve.status.errors"),
      &obs::GetCounter("serve.top.errors"),
      &obs::GetCounter("serve.leakdist.errors"),
      &obs::GetCounter("serve.metrics.errors"),
      &obs::GetCounter("serve.debug.errors"),
      &obs::GetCounter("serve.hegemony.errors"),
      &obs::GetCounter("serve.failure.errors"),
  };
  return *counters[static_cast<std::size_t>(kind)];
}

// FLATNET_SLOW_QUERY_MS: non-negative integer milliseconds; unset or
// unparseable disables the slow-query log.
std::int64_t SlowQueryMsFromEnv() {
  auto text = GetEnv("FLATNET_SLOW_QUERY_MS");
  if (!text) return 0;
  char* end = nullptr;
  long long ms = std::strtoll(text->c_str(), &end, 10);
  if (end == text->c_str() || *end != '\0' || ms < 0) return 0;
  return static_cast<std::int64_t>(ms);
}

// The wire spellings of a campaign cell's scenario (protocol.h grammar).
const char* ScenarioSlug(LeakScenario scenario) {
  switch (scenario) {
    case LeakScenario::kAnnounceAll: return "none";
    case LeakScenario::kAnnounceAllLockT1: return "t1";
    case LeakScenario::kAnnounceAllLockT1T2: return "t1t2";
    case LeakScenario::kAnnounceAllLockGlobal: return "global";
    case LeakScenario::kAnnounceHierarchyOnly: return "hierarchy";
  }
  return "none";
}

// Nearest-rank quantile over an ascending pre-sorted sample — the same
// convention as util/stats.h Quantile, without re-sorting per query.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Dispatcher::Dispatcher(const Internet& internet, const DispatcherOptions& options)
    : internet_(internet),
      options_(options),
      cache_(options.cache_bytes),
      pool_(options.threads),
      start_time_(std::chrono::steady_clock::now()) {
  if (options.shard_count > 1) {
    if (options.shard_index >= options.shard_count) {
      throw InvalidArgument(StrFormat("shard index %zu out of range (%zu shards)",
                                      options.shard_index, options.shard_count));
    }
    ring_.emplace(options.shard_count, options.ring_vnodes);
    obs::Log(obs::LogLevel::kInfo, "serve", "shard.configured")
        .Kv("index", static_cast<std::uint64_t>(options.shard_index))
        .Kv("count", static_cast<std::uint64_t>(options.shard_count));
  }
  slow_query_ms_ = options.slow_query_ms >= 0 ? options.slow_query_ms : SlowQueryMsFromEnv();
  if (slow_query_ms_ > 0) {
    obs::Log(obs::LogLevel::kInfo, "serve", "slow_query_log.armed")
        .Kv("threshold_ms", slow_query_ms_);
  }
  users_.reserve(internet.num_ases());
  for (AsId id = 0; id < internet.num_ases(); ++id) {
    users_.push_back(internet.metadata().Get(id).users);
  }
}

void Dispatcher::AttachSweepStore(sweep::SweepStore store, const std::string& path) {
  store.ValidateAgainst(internet_);
  sweep_store_ = std::move(store);
  sweep_path_ = path;
  for (std::size_t c = 0; c < sweep::kNumSweepColumns; ++c) {
    auto column = static_cast<sweep::SweepColumn>(c);
    if (!sweep_store_.HasColumn(column)) continue;
    const std::vector<std::uint32_t>& values = sweep_store_.table().Column(column);
    std::vector<AsId>& ranking = sweep_rankings_[c];
    // Sharded, the ranking covers only this shard's slice of origin space:
    // the router's k-way merge of the disjoint per-shard rankings then
    // reproduces the full ranking exactly (fleet/merge.h).
    ranking.clear();
    ranking.reserve(values.size());
    for (AsId id = 0; id < static_cast<AsId>(values.size()); ++id) {
      if (OwnsAsId(id)) ranking.push_back(id);
    }
    std::sort(ranking.begin(), ranking.end(), [&](AsId a, AsId b) {
      if (values[a] != values[b]) return values[a] > values[b];
      return internet_.graph().AsnOf(a) < internet_.graph().AsnOf(b);
    });
  }
  std::size_t owned = 0;
  for (AsId id = 0; id < internet_.num_ases(); ++id) {
    if (OwnsAsId(id)) ++owned;
  }
  sweep_loaded_ = true;
  obs::Log(obs::LogLevel::kInfo, "serve", "sweep_store.attached")
      .Kv("path", path)
      .Kv("origins", static_cast<std::uint64_t>(sweep_store_.num_origins()))
      .Kv("owned", static_cast<std::uint64_t>(owned));
}

void Dispatcher::AttachLeakStore(leaksim::LeakStore store, const std::string& path) {
  store.ValidateAgainst(internet_);
  leak_store_ = std::move(store);
  leak_path_ = path;
  leak_sorted_.clear();
  leak_sorted_.reserve(leak_store_.num_cells());
  leak_owned_.clear();
  leak_owned_.reserve(leak_store_.num_cells());
  for (std::size_t i = 0; i < leak_store_.num_cells(); ++i) {
    bool owned = OwnsAsId(leak_store_.cell(i).spec.victim);
    leak_owned_.push_back(owned ? 1 : 0);
    if (!owned) {
      // Not this shard's slice: keep the index aligned but hold no samples.
      leak_sorted_.emplace_back();
      continue;
    }
    std::vector<double> sorted = leak_store_.cell(i).fraction_ases;
    std::sort(sorted.begin(), sorted.end());
    leak_sorted_.push_back(std::move(sorted));
  }
  leak_loaded_ = true;
  obs::Log(obs::LogLevel::kInfo, "serve", "leak_store.attached")
      .Kv("path", path)
      .Kv("cells", static_cast<std::uint64_t>(leak_store_.num_cells()));
}

void Dispatcher::AttachFailStore(failsim::FailStore store, const std::string& path) {
  store.ValidateAgainst(internet_);
  fail_store_ = std::move(store);
  fail_path_ = path;
  fail_sorted_.clear();
  fail_sorted_.reserve(fail_store_.num_cells());
  fail_owned_.clear();
  fail_owned_.reserve(fail_store_.num_cells());
  hegemony_rankings_.clear();
  for (std::size_t i = 0; i < fail_store_.num_cells(); ++i) {
    const failsim::FailCellResult& cell = fail_store_.cell(i);
    bool owned = OwnsAsId(cell.spec.origin);
    fail_owned_.push_back(owned ? 1 : 0);
    if (!owned) {
      fail_sorted_.emplace_back();
      continue;
    }
    FailSortedCell sorted;
    sorted.loss_ases = cell.loss_ases;
    std::sort(sorted.loss_ases.begin(), sorted.loss_ases.end());
    sorted.disconnected = cell.disconnected;
    std::sort(sorted.disconnected.begin(), sorted.disconnected.end());
    sorted.loss_users = cell.loss_users;
    std::sort(sorted.loss_users.begin(), sorted.loss_users.end());
    fail_sorted_.push_back(std::move(sorted));
    hegemony_rankings_.emplace(cell.spec.origin, HegemonyRank{});
  }
  // One hegemony computation per distinct origin — milliseconds each, so
  // attach stays cheap and every `hegemony` query is a prefix copy.
  for (auto& [origin, rank] : hegemony_rankings_) {
    AnnouncementSource source;
    source.node = origin;
    RouteComputation computation(internet_.graph(), {source});
    HegemonyResult result = ComputeHegemony(computation);
    rank.ranking = HegemonyRanking(result);
    rank.scores.reserve(rank.ranking.size());
    for (AsId a : rank.ranking) rank.scores.push_back(result.hegemony[a]);
    rank.num_viewpoints = result.num_viewpoints;
    rank.trimmed_each_end = result.trimmed_each_end;
  }
  fail_loaded_ = true;
  obs::Log(obs::LogLevel::kInfo, "serve", "fail_store.attached")
      .Kv("path", path)
      .Kv("cells", static_cast<std::uint64_t>(fail_store_.num_cells()))
      .Kv("origins", static_cast<std::uint64_t>(hegemony_rankings_.size()));
}

AsId Dispatcher::ResolveAsn(Asn asn, const char* field) const {
  auto id = internet_.graph().IdOf(asn);
  if (!id) {
    throw ProtocolError(ErrorCode::kUnknownAsn,
                        StrFormat("%s AS%u is not in the topology", field, asn));
  }
  return *id;
}

Bitset Dispatcher::ResolveAsnList(const std::vector<Asn>& asns) const {
  Bitset mask(internet_.num_ases());
  for (Asn asn : asns) mask.Set(ResolveAsn(asn, "listed"));
  return mask;
}

bool Dispatcher::OwnsAsId(AsId id) const {
  if (!ring_) return true;
  return ring_->Owner(internet_.graph().AsnOf(id)) == options_.shard_index;
}

void Dispatcher::RequireOwned(AsId id, const char* op) const {
  if (OwnsAsId(id)) return;
  Asn asn = internet_.graph().AsnOf(id);
  throw ProtocolError(
      ErrorCode::kBadRequest,
      StrFormat("%s: AS%u belongs to shard %zu of %zu (this is shard %zu; route "
                "through the fleet router)",
                op, asn, ring_->Owner(asn), options_.shard_count,
                options_.shard_index));
}

void Dispatcher::Handle(const std::string& line, std::function<void(std::string)> done) {
  Handle(line, std::move(done), std::chrono::steady_clock::now());
}

void Dispatcher::Handle(const std::string& line, std::function<void(std::string)> done,
                        std::chrono::steady_clock::time_point received_at) {
  Counters().requests.Increment();
  auto t0 = std::chrono::steady_clock::now();

  Json doc;
  try {
    doc = Json::Parse(line);
  } catch (const ParseError& e) {
    Counters().errors.Increment();
    done(ErrorResponse(Json(), ErrorCode::kBadRequest,
                       std::string("malformed JSON: ") + e.what()));
    return;
  }
  Json id = doc.type() == Json::Type::kObject ? doc.Get("id") : Json();

  Request request;
  try {
    request = RequestFromJson(doc);
  } catch (const ProtocolError& e) {
    Counters().errors.Increment();
    done(ErrorResponse(id, e.code(), e.what()));
    return;
  }
  OpRequests(request.kind).Increment();

  // Tracing is paid only when asked for — by this request (`timing`) or by
  // an armed slow-query threshold. Otherwise a request's total tracing
  // cost is the two clock reads above and null-pointer branches below, and
  // the response bytes are exactly the untraced encoding.
  std::shared_ptr<obs::RequestTrace> trace;
  if (request.timing || slow_query_ms_ > 0) {
    auto t_parse = std::chrono::steady_clock::now();
    trace = std::make_shared<obs::RequestTrace>(received_at);
    trace->MarkAt("accept", t0);
    trace->MarkAt("parse", t_parse);
  }

  // `status`, `top`, `leakdist`, `metrics`, and `debug` read precomputed
  // or in-memory state — microseconds, so they skip the cache and the pool
  // entirely and are answered on the connection thread.
  if (request.kind != QueryKind::kReach && request.kind != QueryKind::kReliance &&
      request.kind != QueryKind::kLeak) {
    try {
      std::string result;
      switch (request.kind) {
        case QueryKind::kStatus: result = StatusResult(); break;
        case QueryKind::kTop: result = ExecuteTop(request); break;
        case QueryKind::kLeakDist: result = ExecuteLeakDist(request); break;
        case QueryKind::kMetrics: result = ExecuteMetrics(request); break;
        case QueryKind::kDebug: result = ExecuteDebug(request); break;
        case QueryKind::kHegemony: result = ExecuteHegemony(request); break;
        case QueryKind::kFailure: result = ExecuteFailure(request); break;
        default: break;
      }
      if (trace != nullptr) trace->Mark("execute");
      Respond(request, id, result, false, trace.get(), done);
    } catch (const ProtocolError& e) {
      Counters().errors.Increment();
      OpErrors(request.kind).Increment();
      done(ErrorResponse(id, e.code(), e.what()));
    }
    LatencyHistogram(request.kind).Observe(MillisSince(t0));
    return;
  }

  std::string key = CacheKey(request);
  if (auto hit = cache_.Get(key)) {
    if (trace != nullptr) trace->Mark("cache_probe");
    Respond(request, id, *hit, true, trace.get(), done);
    LatencyHistogram(request.kind).Observe(MillisSince(t0));
    return;
  }
  if (trace != nullptr) trace->Mark("cache_probe");

  // The deadline clock starts at admission, so time spent queued behind
  // other queries counts against the request's budget.
  std::int64_t deadline_ms =
      request.deadline_ms > 0 ? request.deadline_ms : options_.default_deadline_ms;
  std::shared_ptr<CancelToken> token;
  if (deadline_ms > 0) {
    token = std::make_shared<CancelToken>(std::chrono::steady_clock::now() +
                                          std::chrono::milliseconds(deadline_ms));
  }

  inflight_.fetch_add(1, std::memory_order_relaxed);
  Counters().inflight.Set(inflight_.load(std::memory_order_relaxed));
  // `done` and `id` are captured by copy: if admission rejects the job, the
  // originals are still live for the overload response below.
  auto job = [this, request, id, key, token, done, t0, trace] {
    if (trace != nullptr) trace->Mark("queue");
    std::string response;
    bool respond_ok = false;
    try {
      std::string result = Execute(request, token.get(), trace.get());
      cache_.Put(key, result);
      respond_ok = true;
      Respond(request, id, result, false, trace.get(), done);
    } catch (const CancelledError&) {
      Counters().deadline_exceeded.Increment();
      Counters().errors.Increment();
      OpErrors(request.kind).Increment();
      response = ErrorResponse(id, ErrorCode::kDeadlineExceeded,
                               "query abandoned past its deadline");
    } catch (const ProtocolError& e) {
      Counters().errors.Increment();
      OpErrors(request.kind).Increment();
      response = ErrorResponse(id, e.code(), e.what());
    } catch (const Error& e) {
      Counters().errors.Increment();
      OpErrors(request.kind).Increment();
      obs::Log(obs::LogLevel::kError, "serve", "query.internal_error")
          .Kv("op", ToString(request.kind))
          .Kv("error", e.what());
      response = ErrorResponse(id, ErrorCode::kInternal, e.what());
    }
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    Counters().inflight.Set(inflight_.load(std::memory_order_relaxed));
    LatencyHistogram(request.kind).Observe(MillisSince(t0));
    if (!respond_ok) done(response);
  };
  if (!pool_.TrySubmit(std::move(job), options_.max_inflight)) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    Counters().inflight.Set(inflight_.load(std::memory_order_relaxed));
    Counters().overloaded.Increment();
    Counters().errors.Increment();
    OpErrors(request.kind).Increment();
    done(ErrorResponse(id, ErrorCode::kOverloaded,
                       StrFormat("at the admission high-water mark (%zu queries in flight)",
                                 options_.max_inflight)));
  }
}

void Dispatcher::Respond(const Request& request, const Json& id, const std::string& result,
                         bool cached, obs::RequestTrace* trace,
                         const std::function<void(std::string)>& done) const {
  if (trace == nullptr) {
    done(OkResponse(id, result, cached));
    return;
  }
  std::string timing;
  const std::string* timing_ptr = nullptr;
  if (request.timing) {
    trace->Mark("serialize");
    timing = trace->TimingJson().Dump();
    timing_ptr = &timing;
  }
  done(OkResponse(id, result, cached, timing_ptr));
  trace->Mark("write");
  if (slow_query_ms_ > 0 && trace->MarkedMs() >= static_cast<double>(slow_query_ms_)) {
    Counters().slow_queries.Increment();
    obs::Log(obs::LogLevel::kWarn, "serve", "slow_query")
        .Kv("op", ToString(request.kind))
        .Kv("cached", cached)
        .Kv("threshold_ms", slow_query_ms_)
        .Kv("total_ms", trace->MarkedMs())
        .Kv("phases", trace->Format());
  }
}

std::string Dispatcher::HandleSync(const std::string& line) {
  std::mutex mu;
  std::condition_variable cv;
  std::string response;
  bool ready = false;
  Handle(line, [&](std::string r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      response = std::move(r);
      ready = true;
    }
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  return response;
}

void Dispatcher::Drain() { pool_.Wait(); }

std::string Dispatcher::Execute(const Request& request, const CancelToken* cancel,
                                obs::RequestTrace* trace) const {
  switch (request.kind) {
    case QueryKind::kReach: return ExecuteReach(request, cancel, trace);
    case QueryKind::kReliance: return ExecuteReliance(request, cancel, trace);
    case QueryKind::kLeak: return ExecuteLeak(request, cancel, trace);
    case QueryKind::kTop: return ExecuteTop(request);
    case QueryKind::kLeakDist: return ExecuteLeakDist(request);
    case QueryKind::kMetrics: return ExecuteMetrics(request);
    case QueryKind::kDebug: return ExecuteDebug(request);
    case QueryKind::kHegemony: return ExecuteHegemony(request);
    case QueryKind::kFailure: return ExecuteFailure(request);
    case QueryKind::kStatus: break;
  }
  throw ProtocolError(ErrorCode::kInternal, "unreachable op");
}

std::string Dispatcher::ExecuteReach(const Request& request, const CancelToken* cancel,
                                     obs::RequestTrace* trace) const {
  AsId origin = ResolveAsn(request.origin, "origin");
  std::size_t n = internet_.num_ases();

  Bitset excluded(n);
  switch (request.mode) {
    case ReachMode::kFull: break;
    case ReachMode::kProviderFree: excluded = internet_.ProviderFreeExclusion(origin); break;
    case ReachMode::kTier1Free: excluded = internet_.Tier1FreeExclusion(origin); break;
    case ReachMode::kHierarchyFree:
      excluded = internet_.HierarchyFreeExclusion(origin);
      break;
  }
  for (Asn asn : request.excluded) {
    AsId id = ResolveAsn(asn, "excluded");
    if (id == origin) {
      throw ProtocolError(ErrorCode::kBadRequest, "the origin cannot be excluded");
    }
    excluded.Set(id);
  }

  PropagationOptions options;
  options.cancel = cancel;
  options.trace = trace;
  if (excluded.Any()) options.excluded = &excluded;
  Bitset locked;
  if (!request.peer_locked.empty()) {
    // Peer locking protects the origin's prefix: locked ASes accept it only
    // directly from the origin (kFull). kDirectOnly names no refused
    // senders in a reach query, so it degenerates to unfiltered — accepted
    // for symmetry with leak, where it models the pre-erratum semantics.
    locked = ResolveAsnList(request.peer_locked);
    options.peer_locked = &locked;
    options.protected_origin = origin;
    options.lock_mode = request.lock_mode;
  }

  AnnouncementSource source;
  source.node = origin;
  if (trace != nullptr) trace->Mark("setup");
  RouteComputation computation(internet_.graph(), {source}, options);
  std::size_t reachable = computation.ReachedCount();

  std::size_t denominator = n > 0 ? n - 1 : 0;
  Json result = Json::MakeObject();
  result["denominator"] = static_cast<std::uint64_t>(denominator);
  result["excluded"] = static_cast<std::uint64_t>(excluded.Count());
  result["fraction"] = denominator > 0
                           ? static_cast<double>(reachable) / static_cast<double>(denominator)
                           : 0.0;
  result["mode"] = ToString(request.mode);
  result["origin"] = request.origin;
  result["reachable"] = static_cast<std::uint64_t>(reachable);
  std::string out = result.Dump();
  if (trace != nullptr) trace->Mark("serialize");
  return out;
}

std::string Dispatcher::ExecuteReliance(const Request& request, const CancelToken* cancel,
                                        obs::RequestTrace* trace) const {
  AsId origin = ResolveAsn(request.origin, "origin");

  PropagationOptions options;
  options.cancel = cancel;
  options.trace = trace;
  AnnouncementSource source;
  source.node = origin;
  if (trace != nullptr) trace->Mark("setup");
  RouteComputation computation(internet_.graph(), {source}, options);
  ThrowIfCancelled(cancel, "serve.reliance");
  RelianceResult reliance = ComputeReliance(computation);
  if (trace != nullptr) trace->Mark("reliance");

  // Rank every AS with nonzero reliance; ties broken by ascending ASN so
  // the payload is deterministic.
  struct Ranked {
    double value;
    Asn asn;
    AsId id;
  };
  std::vector<Ranked> ranked;
  for (AsId id = 0; id < internet_.num_ases(); ++id) {
    if (reliance.reliance[id] > 0.0 && id != origin) {
      ranked.push_back({reliance.reliance[id], internet_.graph().AsnOf(id), id});
    }
  }
  std::size_t k = std::min(request.top_k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(k),
                    ranked.end(), [](const Ranked& a, const Ranked& b) {
                      if (a.value != b.value) return a.value > b.value;
                      return a.asn < b.asn;
                    });
  ranked.resize(k);

  Json top = Json::MakeArray();
  for (const Ranked& r : ranked) {
    Json entry = Json::MakeObject();
    entry["asn"] = r.asn;
    entry["name"] = internet_.NameOf(r.id);
    entry["reliance"] = r.value;
    top.Append(std::move(entry));
  }
  Json result = Json::MakeObject();
  result["k"] = static_cast<std::uint64_t>(request.top_k);
  result["origin"] = request.origin;
  result["top"] = std::move(top);
  std::string out = result.Dump();
  if (trace != nullptr) trace->Mark("serialize");
  return out;
}

std::string Dispatcher::ExecuteLeak(const Request& request, const CancelToken* cancel,
                                    obs::RequestTrace* trace) const {
  AsId victim = ResolveAsn(request.victim, "victim");
  AsId leaker = ResolveAsn(request.leaker, "leaker");

  LeakConfig config;
  config.lock_mode = request.lock_mode;
  config.model = request.model;
  config.cancel = cancel;
  config.trace = trace;
  if (!request.peer_locked.empty()) {
    config.peer_locked = ResolveAsnList(request.peer_locked);
  }
  if (trace != nullptr) trace->Mark("setup");
  // The constructor runs the victim-only baseline propagation (untraced);
  // Run's joint propagation marks the propagation.* phases via config.trace.
  LeakExperiment experiment(internet_.graph(), victim, std::move(config),
                            users_.empty() ? nullptr : &users_);
  if (trace != nullptr) trace->Mark("baseline");
  std::optional<LeakOutcome> outcome = experiment.Run(leaker);
  if (!outcome) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "leaker holds no route to the victim (nothing to leak)");
  }

  Json result = Json::MakeObject();
  result["detoured"] = static_cast<std::uint64_t>(outcome->detoured_count);
  result["fraction_ases"] = outcome->fraction_ases_detoured;
  result["fraction_users"] = outcome->fraction_users_detoured;
  result["leaker"] = request.leaker;
  result["model"] = request.model == LeakModel::kReannounce ? "reannounce" : "originate";
  result["victim"] = request.victim;
  std::string out = result.Dump();
  if (trace != nullptr) trace->Mark("serialize");
  return out;
}

std::string Dispatcher::ExecuteTop(const Request& request) const {
  if (!sweep_loaded_) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "no sweep store loaded (run flatnet_sweep, then start the "
                        "server with --sweep)");
  }
  sweep::SweepColumn column = sweep::SweepColumn::kHierarchyFree;
  switch (request.metric) {
    case ReachMode::kProviderFree: column = sweep::SweepColumn::kProviderFree; break;
    case ReachMode::kTier1Free: column = sweep::SweepColumn::kTier1Free; break;
    case ReachMode::kHierarchyFree: column = sweep::SweepColumn::kHierarchyFree; break;
    case ReachMode::kFull: break;  // rejected at parse time
  }
  if (!sweep_store_.HasColumn(column)) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        StrFormat("the loaded sweep store has no '%s' column",
                                  ToString(request.metric)));
  }

  const std::vector<AsId>& ranking = sweep_rankings_[static_cast<std::size_t>(column)];
  std::size_t k = std::min(request.top_k, ranking.size());
  Json top = Json::MakeArray();
  for (std::size_t i = 0; i < k; ++i) {
    AsId id = ranking[i];
    Json entry = Json::MakeObject();
    entry["asn"] = internet_.graph().AsnOf(id);
    entry["name"] = internet_.NameOf(id);
    entry["reach"] = static_cast<std::uint64_t>(sweep_store_.Value(column, id));
    top.Append(std::move(entry));
  }
  Json result = Json::MakeObject();
  result["denominator"] =
      static_cast<std::uint64_t>(internet_.num_ases() > 0 ? internet_.num_ases() - 1 : 0);
  result["k"] = static_cast<std::uint64_t>(request.top_k);
  result["metric"] = ToString(request.metric);
  result["top"] = std::move(top);
  return result.Dump();
}

std::string Dispatcher::ExecuteLeakDist(const Request& request) const {
  if (!leak_loaded_) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "no leak store loaded (run flatnet_leaksim --campaign, then start "
                        "the server with --leak)");
  }
  AsId victim = ResolveAsn(request.victim, "victim");
  RequireOwned(victim, "leakdist");
  std::size_t cell_index =
      leak_store_.FindCell(victim, request.scenario, request.lock_mode, request.model);
  if (cell_index == leaksim::LeakStore::npos) {
    throw ProtocolError(
        ErrorCode::kBadRequest,
        StrFormat("the loaded leak store has no cell for victim AS%u, scenario '%s', "
                  "lock_mode '%s', model '%s'",
                  request.victim, ScenarioSlug(request.scenario),
                  request.lock_mode == PeerLockMode::kFull ? "full" : "direct_only",
                  request.model == LeakModel::kReannounce ? "reannounce" : "originate"));
  }
  const leaksim::LeakCellResult& cell = leak_store_.cell(cell_index);
  const std::vector<double>& sorted = leak_sorted_[cell_index];

  static const std::vector<double> kDefaultQuantiles{0.5, 0.9, 0.99};
  const std::vector<double>& qs =
      request.quantiles.empty() ? kDefaultQuantiles : request.quantiles;

  double mean = sorted.empty() ? 0.0
                               : std::accumulate(sorted.begin(), sorted.end(), 0.0) /
                                     static_cast<double>(sorted.size());
  Json quantiles = Json::MakeArray();
  for (double q : qs) {
    Json entry = Json::MakeObject();
    entry["q"] = q;
    entry["value"] = SortedQuantile(sorted, q);
    quantiles.Append(std::move(entry));
  }

  Json result = Json::MakeObject();
  result["attempts"] = static_cast<std::uint64_t>(cell.attempts);
  result["collected"] = static_cast<std::uint64_t>(cell.collected());
  result["lock_mode"] =
      request.lock_mode == PeerLockMode::kFull ? "full" : "direct_only";
  result["mean"] = mean;
  result["model"] = request.model == LeakModel::kReannounce ? "reannounce" : "originate";
  result["quantiles"] = std::move(quantiles);
  result["requested"] = static_cast<std::uint64_t>(cell.spec.trials);
  result["scenario"] = ScenarioSlug(request.scenario);
  result["under_collected"] = cell.UnderCollected();
  result["victim"] = request.victim;
  return result.Dump();
}

std::string Dispatcher::ExecuteHegemony(const Request& request) const {
  if (!fail_loaded_) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "no fail store loaded (run flatnet_failsim, then start the "
                        "server with --fail)");
  }
  AsId origin = ResolveAsn(request.origin, "origin");
  RequireOwned(origin, "hegemony");
  auto it = hegemony_rankings_.find(origin);
  if (it == hegemony_rankings_.end()) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        StrFormat("the loaded fail store has no cells for origin AS%u",
                                  request.origin));
  }
  const HegemonyRank& rank = it->second;

  std::size_t k = std::min(request.top_k, rank.ranking.size());
  Json top = Json::MakeArray();
  for (std::size_t i = 0; i < k; ++i) {
    AsId id = rank.ranking[i];
    Json entry = Json::MakeObject();
    entry["asn"] = internet_.graph().AsnOf(id);
    entry["hegemony"] = rank.scores[i];
    entry["name"] = internet_.NameOf(id);
    top.Append(std::move(entry));
  }
  Json result = Json::MakeObject();
  result["k"] = static_cast<std::uint64_t>(request.top_k);
  result["num_viewpoints"] = static_cast<std::uint64_t>(rank.num_viewpoints);
  result["origin"] = request.origin;
  result["top"] = std::move(top);
  result["trimmed_each_end"] = static_cast<std::uint64_t>(rank.trimmed_each_end);
  return result.Dump();
}

std::string Dispatcher::ExecuteFailure(const Request& request) const {
  if (!fail_loaded_) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "no fail store loaded (run flatnet_failsim, then start the "
                        "server with --fail)");
  }
  AsId origin = ResolveAsn(request.origin, "origin");
  RequireOwned(origin, "failure");
  std::size_t cell_index = fail_store_.FindCell(origin, request.fail_scenario);
  if (cell_index == failsim::FailStore::npos) {
    throw ProtocolError(
        ErrorCode::kBadRequest,
        StrFormat("the loaded fail store has no cell for origin AS%u, scenario '%s'",
                  request.origin, failsim::ToString(request.fail_scenario)));
  }
  if (request.fail_column == FailColumn::kLossUsers && !fail_store_.has_users()) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "the loaded fail store has no user-weighted column (rerun "
                        "flatnet_failsim with --users)");
  }
  const failsim::FailCellResult& cell = fail_store_.cell(cell_index);
  const FailSortedCell& cell_sorted = fail_sorted_[cell_index];
  const std::vector<double>* sorted = &cell_sorted.loss_ases;
  switch (request.fail_column) {
    case FailColumn::kLossAses: break;
    case FailColumn::kDisconnected: sorted = &cell_sorted.disconnected; break;
    case FailColumn::kLossUsers: sorted = &cell_sorted.loss_users; break;
  }

  static const std::vector<double> kDefaultQuantiles{0.5, 0.9, 0.99};
  const std::vector<double>& qs =
      request.quantiles.empty() ? kDefaultQuantiles : request.quantiles;

  double mean = sorted->empty() ? 0.0
                                : std::accumulate(sorted->begin(), sorted->end(), 0.0) /
                                      static_cast<double>(sorted->size());
  Json quantiles = Json::MakeArray();
  for (double q : qs) {
    Json entry = Json::MakeObject();
    entry["q"] = q;
    entry["value"] = SortedQuantile(*sorted, q);
    quantiles.Append(std::move(entry));
  }

  Json result = Json::MakeObject();
  result["baseline"] = static_cast<std::uint64_t>(cell.baseline);
  result["collected"] = static_cast<std::uint64_t>(cell.collected());
  result["column"] = ToString(request.fail_column);
  result["mean"] = mean;
  result["origin"] = request.origin;
  result["quantiles"] = std::move(quantiles);
  result["requested"] = static_cast<std::uint64_t>(cell.spec.trials);
  result["scenario"] = failsim::ToString(request.fail_scenario);
  result["severity"] = cell.spec.severity;
  result["under_collected"] = cell.UnderCollected();
  return result.Dump();
}

std::string Dispatcher::ExecuteMetrics(const Request& request) const {
  Json result = Json::MakeObject();
  if (request.prometheus) {
    result["content_type"] = "text/plain; version=0.0.4";
    result["format"] = "prometheus";
    result["text"] = obs::RenderPrometheusText();
  } else {
    result["format"] = "json";
    result["metrics"] = obs::ObservabilitySnapshot();
  }
  return result.Dump();
}

std::string Dispatcher::ExecuteDebug(const Request& request) const {
  return obs::RecorderJson(request.debug_n).Dump();
}

std::string Dispatcher::StatusResult() {
  CacheStats stats = cache_.Stats();
  obs::GetGauge("serve.cache.bytes").Set(static_cast<std::int64_t>(stats.bytes));
  obs::GetGauge("serve.cache.entries").Set(static_cast<std::int64_t>(stats.entries));
  Counters().inflight.Set(inflight_.load(std::memory_order_relaxed));

  Json cache = Json::MakeObject();
  cache["bytes"] = stats.bytes;
  cache["capacity_bytes"] = stats.capacity_bytes;
  cache["entries"] = stats.entries;
  cache["evictions"] = stats.evictions;
  cache["hit_ratio"] = stats.hits + stats.misses > 0
                           ? static_cast<double>(stats.hits) /
                                 static_cast<double>(stats.hits + stats.misses)
                           : 0.0;
  cache["hits"] = stats.hits;
  cache["misses"] = stats.misses;
  cache["oversize"] = stats.oversize;

  // Per-op request/error counters, keyed by wire op name.
  Json ops = Json::MakeObject();
  for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
    auto kind = static_cast<QueryKind>(k);
    Json op = Json::MakeObject();
    op["errors"] = OpErrors(kind).value();
    op["requests"] = OpRequests(kind).value();
    ops[ToString(kind)] = std::move(op);
  }

  Json sweep_store = Json::MakeObject();
  sweep_store["loaded"] = sweep_loaded_;
  if (sweep_loaded_) {
    Json columns = Json::MakeArray();
    for (std::size_t c = 0; c < sweep::kNumSweepColumns; ++c) {
      auto column = static_cast<sweep::SweepColumn>(c);
      if (sweep_store_.HasColumn(column)) columns.Append(Json(sweep::ToString(column)));
    }
    sweep_store["columns"] = std::move(columns);
    sweep_store["num_origins"] = static_cast<std::uint64_t>(sweep_store_.num_origins());
    sweep_store["path"] = sweep_path_;
  }

  Json leak_store = Json::MakeObject();
  leak_store["loaded"] = leak_loaded_;
  if (leak_loaded_) {
    leak_store["cells"] = static_cast<std::uint64_t>(leak_store_.num_cells());
    leak_store["path"] = leak_path_;
    // Distinct victim ASNs, ascending — lets a client (or the CI smoke
    // test) discover which victims are queryable without a topology scan.
    std::vector<Asn> victims;
    for (std::size_t i = 0; i < leak_store_.num_cells(); ++i) {
      if (leak_owned_[i] == 0) continue;  // another shard's slice
      victims.push_back(internet_.graph().AsnOf(leak_store_.cell(i).spec.victim));
    }
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
    Json victim_list = Json::MakeArray();
    for (Asn asn : victims) victim_list.Append(Json(asn));
    leak_store["victims"] = std::move(victim_list);
  }

  Json fail_store = Json::MakeObject();
  fail_store["loaded"] = fail_loaded_;
  if (fail_loaded_) {
    fail_store["cells"] = static_cast<std::uint64_t>(fail_store_.num_cells());
    fail_store["has_users"] = fail_store_.has_users();
    fail_store["path"] = fail_path_;
    // Distinct origin ASNs, ascending — the origins `hegemony` and
    // `failure` can answer for, discoverable without a topology scan.
    std::vector<Asn> origins;
    origins.reserve(hegemony_rankings_.size());
    for (const auto& [id, rank] : hegemony_rankings_) {
      origins.push_back(internet_.graph().AsnOf(id));
    }
    std::sort(origins.begin(), origins.end());
    Json origin_list = Json::MakeArray();
    for (Asn asn : origins) origin_list.Append(Json(asn));
    fail_store["origins"] = std::move(origin_list);
    // Distinct scenario slugs in enum order. CLI-produced stores hold the
    // full origins x scenarios cross-product, so a client can combine the
    // two lists freely.
    Json scenario_list = Json::MakeArray();
    for (std::size_t s = 0; s < failsim::kNumFailScenarios; ++s) {
      auto scenario = static_cast<failsim::FailScenario>(s);
      for (std::size_t i = 0; i < fail_store_.num_cells(); ++i) {
        if (fail_owned_[i] == 0) continue;  // another shard's slice
        if (fail_store_.cell(i).spec.scenario == scenario) {
          scenario_list.Append(Json(failsim::ToString(scenario)));
          break;
        }
      }
    }
    fail_store["scenarios"] = std::move(scenario_list);
  }

  Json result = Json::MakeObject();
  result["cache"] = std::move(cache);
  result["fail_store"] = std::move(fail_store);
  result["inflight"] = static_cast<std::int64_t>(inflight());
  result["leak_store"] = std::move(leak_store);
  result["metrics"] = obs::ObservabilitySnapshot();
  result["num_ases"] = static_cast<std::uint64_t>(internet_.num_ases());
  result["num_edges"] = static_cast<std::uint64_t>(internet_.graph().num_edges());
  result["ops"] = std::move(ops);
  if (ring_) {
    // Fleet identity: which slice of the hash space this shard owns. Hex
    // interval strings — JSON numbers are doubles and would corrupt the
    // 64-bit ring points.
    Json shard = Json::MakeObject();
    shard["count"] = static_cast<std::uint64_t>(options_.shard_count);
    shard["index"] = static_cast<std::uint64_t>(options_.shard_index);
    shard["vnodes"] = static_cast<std::uint64_t>(ring_->vnodes());
    Json ranges = Json::MakeArray();
    for (const auto& [lo, hi] : ring_->RangesOf(options_.shard_index)) {
      Json pair = Json::MakeArray();
      pair.Append(Json(StrFormat("%016llx", static_cast<unsigned long long>(lo))));
      pair.Append(Json(StrFormat("%016llx", static_cast<unsigned long long>(hi))));
      ranges.Append(std::move(pair));
    }
    shard["owned_ranges"] = std::move(ranges);
    result["shard"] = std::move(shard);
  }
  result["slow_query_ms"] = slow_query_ms_;
  result["sweep_store"] = std::move(sweep_store);
  result["threads"] = static_cast<std::uint64_t>(pool_.thread_count());
  result["uptime_s"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_).count();
  return result.Dump();
}

}  // namespace flatnet::serve
