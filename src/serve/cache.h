// Sharded byte-budget LRU cache for serialized query results.
//
// Keys are the canonical strings from protocol.h CacheKey; values are the
// compact `result` JSON payloads, stored verbatim so a hit reproduces the
// cold response byte-for-byte. The store is sharded by key hash so the
// dispatcher's worker threads do not serialize on one mutex; each shard
// holds an intrusive LRU list with its own slice of the byte budget and
// evicts from the cold end until it fits. Hits, misses, and evictions feed
// both the shard-local tallies (surfaced by the `status` op) and the obs
// counters serve.cache.{hit,miss,eviction}.
#ifndef FLATNET_SERVE_CACHE_H_
#define FLATNET_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace flatnet::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  // Put calls rejected because one entry exceeded its shard's byte slice.
  // A nonzero, growing tally means the budget is too small for the working
  // set's payloads — every query for those keys recomputes.
  std::uint64_t oversize = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t capacity_bytes = 0;
};

class ResultCache {
 public:
  // `capacity_bytes` is split evenly across shards; an entry larger than
  // its shard's slice is rejected up front and counted (stats + the
  // serve.cache.oversize counter) instead of silently churning the LRU.
  explicit ResultCache(std::size_t capacity_bytes, std::size_t num_shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Returns the cached value and marks it most-recently-used.
  std::optional<std::string> Get(const std::string& key);

  // Inserts or refreshes `key`, evicting cold entries to fit the budget.
  void Put(const std::string& key, const std::string& value);

  CacheStats Stats() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    // Views into the list entries' keys; list nodes are address-stable.
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t oversize = 0;
  };

  static std::size_t EntryCost(const Entry& entry);
  Shard& ShardFor(const std::string& key);

  std::size_t shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace flatnet::serve

#endif  // FLATNET_SERVE_CACHE_H_
