#include "serve/cache.h"

#include <algorithm>
#include <functional>

#include "obs/metrics.h"

namespace flatnet::serve {
namespace {

// Registered once; relaxed increments on the hot path.
struct CacheCounters {
  obs::Counter& hit = obs::GetCounter("serve.cache.hit");
  obs::Counter& miss = obs::GetCounter("serve.cache.miss");
  obs::Counter& eviction = obs::GetCounter("serve.cache.eviction");
  obs::Counter& oversize = obs::GetCounter("serve.cache.oversize");
};

CacheCounters& Counters() {
  static CacheCounters counters;
  return counters;
}

// Approximate per-entry bookkeeping overhead (list node + index slot).
constexpr std::size_t kEntryOverhead = 96;

}  // namespace

ResultCache::ResultCache(std::size_t capacity_bytes, std::size_t num_shards)
    : shard_capacity_(
          std::max<std::size_t>(1, capacity_bytes / std::max<std::size_t>(1, num_shards))),
      shards_(std::max<std::size_t>(1, num_shards)) {}

std::size_t ResultCache::EntryCost(const Entry& entry) {
  return entry.key.size() + entry.value.size() + kEntryOverhead;
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

std::optional<std::string> ResultCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(std::string_view(key));
  if (it == shard.index.end()) {
    ++shard.misses;
    Counters().miss.Increment();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  Counters().hit.Increment();
  return it->second->value;
}

void ResultCache::Put(const std::string& key, const std::string& value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(std::string_view(key));
  // An entry bigger than the whole shard slice could never survive the
  // eviction loop below; inserting it would only evict everything else
  // first. Reject it up front — and drop any stale smaller value under the
  // same key, which the oversize result has just superseded.
  if (key.size() + value.size() + kEntryOverhead > shard_capacity_) {
    if (it != shard.index.end()) {
      auto node = it->second;
      shard.bytes -= EntryCost(*node);
      shard.index.erase(it);
      shard.lru.erase(node);
    }
    ++shard.oversize;
    Counters().oversize.Increment();
    return;
  }
  if (it != shard.index.end()) {
    shard.bytes -= EntryCost(*it->second);
    it->second->value = value;
    shard.bytes += EntryCost(*it->second);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, value});
    auto node = shard.lru.begin();
    shard.index.emplace(std::string_view(node->key), node);
    shard.bytes += EntryCost(*node);
  }
  while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
    const Entry& cold = shard.lru.back();
    shard.bytes -= EntryCost(cold);
    shard.index.erase(std::string_view(cold.key));
    shard.lru.pop_back();
    ++shard.evictions;
    Counters().eviction.Increment();
  }
}

CacheStats ResultCache::Stats() const {
  CacheStats stats;
  stats.capacity_bytes = static_cast<std::uint64_t>(shard_capacity_) * shards_.size();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.oversize += shard.oversize;
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

}  // namespace flatnet::serve
