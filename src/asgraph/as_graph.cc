#include "asgraph/as_graph.h"

#include <algorithm>
#include <array>

#include "util/error.h"
#include "util/strings.h"

namespace flatnet {

const char* ToString(Relationship rel) {
  switch (rel) {
    case Relationship::kCustomer: return "customer";
    case Relationship::kPeer: return "peer";
    case Relationship::kProvider: return "provider";
  }
  return "?";
}

const char* ToString(EdgeType type) {
  switch (type) {
    case EdgeType::kP2C: return "p2c";
    case EdgeType::kP2P: return "p2p";
  }
  return "?";
}

AsId AsGraphBuilder::AddAs(Asn asn) {
  auto [it, inserted] = id_of_.try_emplace(asn, static_cast<AsId>(asn_of_.size()));
  if (inserted) asn_of_.push_back(asn);
  return it->second;
}

std::uint64_t AsGraphBuilder::PairKey(AsId x, AsId y) {
  if (x > y) std::swap(x, y);
  return (std::uint64_t{x} << 32) | y;
}

void AsGraphBuilder::AddEdge(Asn a, Asn b, EdgeType type) {
  if (a == b) throw InvalidArgument(StrFormat("AddEdge: self-loop on AS%u", a));
  AsId ia = AddAs(a);
  AsId ib = AddAs(b);
  std::uint64_t key = PairKey(ia, ib);
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    const Edge& existing = edges_[it->second];
    bool same = existing.type == type &&
                (type == EdgeType::kP2P || (existing.a == ia && existing.b == ib));
    if (!same) {
      throw InvalidArgument(
          StrFormat("AddEdge: conflicting duplicate edge AS%u-AS%u", a, b));
    }
    return;
  }
  edge_index_.emplace(key, static_cast<std::uint32_t>(edges_.size()));
  edges_.push_back(Edge{ia, ib, type});
}

bool AsGraphBuilder::AddEdgeIfAbsent(Asn a, Asn b, EdgeType type) {
  if (a == b) return false;
  AsId ia = AddAs(a);
  AsId ib = AddAs(b);
  std::uint64_t key = PairKey(ia, ib);
  if (edge_index_.contains(key)) return false;
  edge_index_.emplace(key, static_cast<std::uint32_t>(edges_.size()));
  edges_.push_back(Edge{ia, ib, type});
  return true;
}

bool AsGraphBuilder::HasEdge(Asn a, Asn b) const {
  auto ia = id_of_.find(a);
  auto ib = id_of_.find(b);
  if (ia == id_of_.end() || ib == id_of_.end()) return false;
  return edge_index_.contains(PairKey(ia->second, ib->second));
}

AsGraph AsGraphBuilder::Build() && {
  AsGraph graph;
  graph.asn_of_ = std::move(asn_of_);
  graph.id_of_ = std::move(id_of_);
  graph.num_edges_ = edges_.size();

  std::size_t n = graph.asn_of_.size();
  // Per-node neighbor lists bucketed by relationship.
  std::vector<std::array<std::vector<Neighbor>, 3>> adj(n);
  auto bucket_of = [](Relationship rel) { return static_cast<std::size_t>(rel); };
  for (const Edge& e : edges_) {
    if (e.type == EdgeType::kP2P) {
      adj[e.a][bucket_of(Relationship::kPeer)].push_back({e.b, Relationship::kPeer});
      adj[e.b][bucket_of(Relationship::kPeer)].push_back({e.a, Relationship::kPeer});
    } else {
      // e.a is provider of e.b.
      adj[e.a][bucket_of(Relationship::kCustomer)].push_back({e.b, Relationship::kCustomer});
      adj[e.b][bucket_of(Relationship::kProvider)].push_back({e.a, Relationship::kProvider});
    }
  }

  if (edges_.size() * 2 > 0xffffffffull) {
    throw InvalidArgument("AsGraphBuilder: CSR entry count exceeds 32-bit offsets");
  }
  graph.slice_.resize(3 * n + 1);
  graph.entries_.reserve(edges_.size() * 2);
  std::uint32_t cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    graph.slice_[3 * i] = cursor;
    for (std::size_t b = 0; b < 3; ++b) {
      auto& bucket = adj[i][b];
      std::sort(bucket.begin(), bucket.end(),
                [](const Neighbor& x, const Neighbor& y) { return x.id < y.id; });
      graph.entries_.insert(graph.entries_.end(), bucket.begin(), bucket.end());
      cursor += static_cast<std::uint32_t>(bucket.size());
      if (b == bucket_of(Relationship::kCustomer)) graph.slice_[3 * i + 1] = cursor;
      if (b == bucket_of(Relationship::kPeer)) graph.slice_[3 * i + 2] = cursor;
    }
  }
  graph.slice_[3 * n] = cursor;
  graph.entry_ids_.reserve(graph.entries_.size());
  for (const Neighbor& nb : graph.entries_) graph.entry_ids_.push_back(nb.id);
  return graph;
}

std::optional<AsId> AsGraph::IdOf(Asn asn) const {
  auto it = id_of_.find(asn);
  if (it == id_of_.end()) return std::nullopt;
  return it->second;
}

std::span<const Neighbor> AsGraph::NeighborsOf(AsId id) const {
  return {entries_.data() + slice_[3 * id], entries_.data() + slice_[3 * id + 3]};
}

std::span<const Neighbor> AsGraph::Customers(AsId id) const {
  return {entries_.data() + slice_[3 * id], entries_.data() + slice_[3 * id + 1]};
}

std::span<const Neighbor> AsGraph::Peers(AsId id) const {
  return {entries_.data() + slice_[3 * id + 1], entries_.data() + slice_[3 * id + 2]};
}

std::span<const Neighbor> AsGraph::Providers(AsId id) const {
  return {entries_.data() + slice_[3 * id + 2], entries_.data() + slice_[3 * id + 3]};
}

std::span<const AsId> AsGraph::CustomerIds(AsId id) const {
  return {entry_ids_.data() + slice_[3 * id], entry_ids_.data() + slice_[3 * id + 1]};
}

std::span<const AsId> AsGraph::PeerIds(AsId id) const {
  return {entry_ids_.data() + slice_[3 * id + 1], entry_ids_.data() + slice_[3 * id + 2]};
}

std::span<const AsId> AsGraph::ProviderIds(AsId id) const {
  return {entry_ids_.data() + slice_[3 * id + 2], entry_ids_.data() + slice_[3 * id + 3]};
}

std::optional<Relationship> AsGraph::RelationshipBetween(AsId from, AsId to) const {
  for (auto group : {Customers(from), Peers(from), Providers(from)}) {
    auto it = std::lower_bound(group.begin(), group.end(), to,
                               [](const Neighbor& n, AsId id) { return n.id < id; });
    if (it != group.end() && it->id == to) return it->rel;
  }
  return std::nullopt;
}

std::vector<AsGraph::Edge> AsGraph::EdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (AsId i = 0; i < num_ases(); ++i) {
    for (const Neighbor& n : Customers(i)) {
      edges.push_back({AsnOf(i), AsnOf(n.id), EdgeType::kP2C});
    }
    for (const Neighbor& n : Peers(i)) {
      if (i < n.id) edges.push_back({AsnOf(i), AsnOf(n.id), EdgeType::kP2P});
    }
  }
  return edges;
}

}  // namespace flatnet
