#include "asgraph/as_graph.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"
#include "util/narrow.h"
#include "util/strings.h"

namespace flatnet {
namespace {

// Owns everything an AsGraph's spans point into: an opaque owner of the
// column bytes (moved-in vectors or a mapped file) plus the typed
// Neighbor array derived from the id column.
struct GraphStorage {
  std::shared_ptr<const void> backing;
  std::vector<Neighbor> entries;
};

}  // namespace

const char* ToString(Relationship rel) {
  switch (rel) {
    case Relationship::kCustomer: return "customer";
    case Relationship::kPeer: return "peer";
    case Relationship::kProvider: return "provider";
  }
  return "?";
}

const char* ToString(EdgeType type) {
  switch (type) {
    case EdgeType::kP2C: return "p2c";
    case EdgeType::kP2P: return "p2p";
  }
  return "?";
}

AsId AsGraphBuilder::AddAs(Asn asn) {
  auto [it, inserted] = id_of_.try_emplace(asn, static_cast<AsId>(asn_of_.size()));
  if (inserted) asn_of_.push_back(asn);
  return it->second;
}

std::uint64_t AsGraphBuilder::PairKey(AsId x, AsId y) {
  if (x > y) std::swap(x, y);
  return (std::uint64_t{x} << 32) | y;
}

void AsGraphBuilder::AddEdge(Asn a, Asn b, EdgeType type) {
  if (a == b) throw InvalidArgument(StrFormat("AddEdge: self-loop on AS%u", a));
  AsId ia = AddAs(a);
  AsId ib = AddAs(b);
  std::uint64_t key = PairKey(ia, ib);
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    const Edge& existing = edges_[it->second];
    bool same = existing.type == type &&
                (type == EdgeType::kP2P || (existing.a == ia && existing.b == ib));
    if (!same) {
      throw InvalidArgument(
          StrFormat("AddEdge: conflicting duplicate edge AS%u-AS%u", a, b));
    }
    return;
  }
  edge_index_.emplace(key, CheckedNarrow32(edges_.size(), "AsGraphBuilder edge index"));
  edges_.push_back(Edge{ia, ib, type});
}

bool AsGraphBuilder::AddEdgeIfAbsent(Asn a, Asn b, EdgeType type) {
  if (a == b) return false;
  AsId ia = AddAs(a);
  AsId ib = AddAs(b);
  std::uint64_t key = PairKey(ia, ib);
  if (edge_index_.contains(key)) return false;
  edge_index_.emplace(key, CheckedNarrow32(edges_.size(), "AsGraphBuilder edge index"));
  edges_.push_back(Edge{ia, ib, type});
  return true;
}

bool AsGraphBuilder::HasEdge(Asn a, Asn b) const {
  auto ia = id_of_.find(a);
  auto ib = id_of_.find(b);
  if (ia == id_of_.end() || ib == id_of_.end()) return false;
  return edge_index_.contains(PairKey(ia->second, ib->second));
}

AsGraph AsGraphBuilder::Build() && {
  std::size_t n = asn_of_.size();
  std::uint32_t total =
      CheckedNarrow32(edges_.size() * 2, "AsGraphBuilder: CSR entry count");

  AsGraph::Columns columns;
  columns.asn_of = std::move(asn_of_);
  columns.slice.assign(3 * n + 1, 0);
  columns.entry_ids.resize(total);

  // Counting sort into the CSR: one pass to count each (node, bucket)
  // group, a prefix sum into the interleaved slice bounds, one pass to
  // scatter the ids, then a per-bucket sort. No per-node vectors — peak
  // memory is the output plus one u32 cursor per group.
  auto bucket_of = [](Relationship rel) { return static_cast<std::size_t>(rel); };
  std::vector<std::uint32_t> cursor(3 * n, 0);
  auto count = [&](AsId node, Relationship rel) { ++cursor[3 * node + bucket_of(rel)]; };
  for (const Edge& e : edges_) {
    if (e.type == EdgeType::kP2P) {
      count(e.a, Relationship::kPeer);
      count(e.b, Relationship::kPeer);
    } else {
      count(e.a, Relationship::kCustomer);
      count(e.b, Relationship::kProvider);
    }
  }
  std::uint32_t running = 0;
  for (std::size_t g = 0; g < 3 * n; ++g) {
    columns.slice[g] = running;
    std::uint32_t c = cursor[g];
    cursor[g] = running;  // becomes the group's write cursor
    running += c;
  }
  columns.slice[3 * n] = running;
  auto scatter = [&](AsId node, AsId nb, Relationship rel) {
    columns.entry_ids[cursor[3 * node + bucket_of(rel)]++] = nb;
  };
  for (const Edge& e : edges_) {
    if (e.type == EdgeType::kP2P) {
      scatter(e.a, e.b, Relationship::kPeer);
      scatter(e.b, e.a, Relationship::kPeer);
    } else {
      // e.a is provider of e.b.
      scatter(e.a, e.b, Relationship::kCustomer);
      scatter(e.b, e.a, Relationship::kProvider);
    }
  }
  for (std::size_t g = 0; g < 3 * n; ++g) {
    std::sort(columns.entry_ids.begin() + columns.slice[g],
              columns.entry_ids.begin() + (g + 1 < 3 * n ? columns.slice[g + 1]
                                                         : columns.slice[3 * n]));
  }
  return AsGraph::FromColumns(std::move(columns), "AsGraphBuilder");
}

AsGraph AsGraph::FromColumns(Columns columns, const std::string& what) {
  auto owned = std::make_shared<Columns>(std::move(columns));
  if (owned->by_asn.empty() && !owned->asn_of.empty()) {
    owned->by_asn.resize(owned->asn_of.size());
    std::iota(owned->by_asn.begin(), owned->by_asn.end(), AsId{0});
    std::sort(owned->by_asn.begin(), owned->by_asn.end(),
              [&](AsId a, AsId b) { return owned->asn_of[a] < owned->asn_of[b]; });
  }
  const Columns& c = *owned;
  return FromColumns(c.asn_of, c.by_asn, c.slice, c.entry_ids, std::move(owned), what);
}

AsGraph AsGraph::FromColumns(std::span<const Asn> asn_of, std::span<const AsId> by_asn,
                             std::span<const std::uint32_t> slice,
                             std::span<const AsId> entry_ids,
                             std::shared_ptr<const void> keeper, const std::string& what) {
  auto storage = std::make_shared<GraphStorage>();
  storage->backing = std::move(keeper);
  const char* ctx = what.c_str();
  std::size_t n = asn_of.size();
  if (slice.size() != 3 * n + 1) {
    throw Error(StrFormat("%s: slice column has %zu bounds, %zu ASes need %zu", ctx,
                          slice.size(), n, 3 * n + 1));
  }
  if (slice[0] != 0) {
    throw Error(StrFormat("%s: CSR slice does not start at 0 (got %u)", ctx, slice[0]));
  }
  for (std::size_t k = 0; k + 1 < slice.size(); ++k) {
    if (slice[k] > slice[k + 1]) {
      throw Error(StrFormat("%s: CSR slice bounds decrease at index %zu (%u > %u)", ctx, k,
                            slice[k], slice[k + 1]));
    }
  }
  if (entry_ids.size() != slice[3 * n]) {
    throw Error(StrFormat("%s: %zu adjacency entries but slice bounds imply %u", ctx,
                          entry_ids.size(), slice[3 * n]));
  }
  if (entry_ids.size() % 2 != 0) {
    throw Error(StrFormat("%s: odd adjacency entry count %zu (edges store two half-edges)",
                          ctx, entry_ids.size()));
  }
  if (by_asn.size() != n) {
    throw Error(StrFormat("%s: ASN index has %zu entries, expected %zu", ctx, by_asn.size(),
                          n));
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (by_asn[k] >= n) {
      throw Error(StrFormat("%s: ASN index entry %zu is id %u, out of range", ctx, k,
                            by_asn[k]));
    }
    // Strict ASN increase over the index implies distinct ids, which with
    // length n and the range check makes it a permutation.
    if (k > 0 && asn_of[by_asn[k - 1]] >= asn_of[by_asn[k]]) {
      throw Error(StrFormat("%s: ASN index not strictly increasing at entry %zu", ctx, k));
    }
  }

  // Derive the typed Neighbor array (the relationship is implied by the
  // bucket an entry sits in) and check ids are in range and bucket-sorted
  // in the same pass.
  storage->entries.resize(entry_ids.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < 3; ++b) {
      auto rel = static_cast<Relationship>(b);
      for (std::uint32_t k = slice[3 * i + b]; k < slice[3 * i + b + 1]; ++k) {
        AsId nb = entry_ids[k];
        if (nb >= n) {
          throw Error(StrFormat("%s: node %zu has neighbor id %u, out of range", ctx, i, nb));
        }
        if (k > slice[3 * i + b] && entry_ids[k - 1] >= nb) {
          throw Error(StrFormat("%s: %s bucket of node %zu not strictly increasing at "
                                "entry %u",
                                ctx, ToString(rel), i, k));
        }
        storage->entries[k] = Neighbor{nb, rel};
      }
    }
  }

  AsGraph graph;
  graph.asn_of_ = asn_of;
  graph.by_asn_ = by_asn;
  graph.slice_ = slice;
  graph.entry_ids_ = entry_ids;
  graph.entries_ = storage->entries;
  graph.num_edges_ = entry_ids.size() / 2;
  graph.storage_ = std::move(storage);
  return graph;
}

std::optional<AsId> AsGraph::IdOf(Asn asn) const {
  auto it = std::lower_bound(by_asn_.begin(), by_asn_.end(), asn,
                             [&](AsId id, Asn a) { return asn_of_[id] < a; });
  if (it == by_asn_.end() || asn_of_[*it] != asn) return std::nullopt;
  return *it;
}

std::span<const Neighbor> AsGraph::NeighborsOf(AsId id) const {
  return {entries_.data() + slice_[3 * id], entries_.data() + slice_[3 * id + 3]};
}

std::span<const Neighbor> AsGraph::Customers(AsId id) const {
  return {entries_.data() + slice_[3 * id], entries_.data() + slice_[3 * id + 1]};
}

std::span<const Neighbor> AsGraph::Peers(AsId id) const {
  return {entries_.data() + slice_[3 * id + 1], entries_.data() + slice_[3 * id + 2]};
}

std::span<const Neighbor> AsGraph::Providers(AsId id) const {
  return {entries_.data() + slice_[3 * id + 2], entries_.data() + slice_[3 * id + 3]};
}

std::span<const AsId> AsGraph::CustomerIds(AsId id) const {
  return {entry_ids_.data() + slice_[3 * id], entry_ids_.data() + slice_[3 * id + 1]};
}

std::span<const AsId> AsGraph::PeerIds(AsId id) const {
  return {entry_ids_.data() + slice_[3 * id + 1], entry_ids_.data() + slice_[3 * id + 2]};
}

std::span<const AsId> AsGraph::ProviderIds(AsId id) const {
  return {entry_ids_.data() + slice_[3 * id + 2], entry_ids_.data() + slice_[3 * id + 3]};
}

std::optional<Relationship> AsGraph::RelationshipBetween(AsId from, AsId to) const {
  for (auto group : {Customers(from), Peers(from), Providers(from)}) {
    auto it = std::lower_bound(group.begin(), group.end(), to,
                               [](const Neighbor& n, AsId id) { return n.id < id; });
    if (it != group.end() && it->id == to) return it->rel;
  }
  return std::nullopt;
}

std::vector<AsGraph::Edge> AsGraph::EdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (AsId i = 0; i < num_ases(); ++i) {
    for (const Neighbor& n : Customers(i)) {
      edges.push_back({AsnOf(i), AsnOf(n.id), EdgeType::kP2C});
    }
    for (const Neighbor& n : Peers(i)) {
      if (i < n.id) edges.push_back({AsnOf(i), AsnOf(n.id), EdgeType::kP2P});
    }
  }
  return edges;
}

}  // namespace flatnet
