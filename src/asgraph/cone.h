// Customer cone, transit degree, and node degree — the classical influence
// metrics that §6.6 contrasts with hierarchy-free reachability.
#ifndef FLATNET_ASGRAPH_CONE_H_
#define FLATNET_ASGRAPH_CONE_H_

#include <cstdint>
#include <vector>

#include "asgraph/as_graph.h"
#include "util/bitset.h"

namespace flatnet {

// Membership bitset of the customer cone of `root`: the set of ASes
// reachable from `root` by following only provider->customer edges,
// including `root` itself (AS-Rank convention: an AS is in its own cone).
Bitset CustomerCone(const AsGraph& graph, AsId root);

// Cone sizes (|cone|, including self) for every AS. Stub ASes cost O(1);
// transit ASes cost one downward BFS each.
std::vector<std::uint32_t> CustomerConeSizes(const AsGraph& graph);

// Transit degree approximation from the relationship graph: the number of
// neighbors the AS can appear "in the middle" next to, i.e. customers plus
// providers (peers exchange only customer routes, so a pure peering
// neighbor never transits through this AS in valley-free routing... but the
// AS *does* sit between a peer and its own customers, so peers with
// customers attached also count when the AS has at least one customer).
// We use customers + providers, the standard graph-only proxy.
std::vector<std::uint32_t> TransitDegrees(const AsGraph& graph);

// Plain neighbor counts.
std::vector<std::uint32_t> NodeDegrees(const AsGraph& graph);

}  // namespace flatnet

#endif  // FLATNET_ASGRAPH_CONE_H_
