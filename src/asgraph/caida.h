// Readers/writers for the CAIDA AS-relationship file formats.
//
// serial-1:  "<provider-asn>|<customer-asn>|-1"  or  "<peer>|<peer>|0",
//            '#'-prefixed comment lines.
// serial-2:  same, with a trailing "|<source>" field (e.g. "|bgp", "|mlp").
//
// The paper uses the September 2015 serial-1 and September 2020 serial-2
// datasets; these parsers let the library run on the real files when they
// are available (the synthetic generator replaces them otherwise).
#ifndef FLATNET_ASGRAPH_CAIDA_H_
#define FLATNET_ASGRAPH_CAIDA_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "asgraph/as_graph.h"

namespace flatnet {

enum class CaidaFormat {
  kSerial1,
  kSerial2,
};

// Parses a CAIDA AS-relationship stream into a builder. Accepts both
// serial-1 and serial-2 lines (the source field is ignored). Throws
// ParseError with the offending line number on malformed input.
void ReadCaidaRelationships(std::istream& in, AsGraphBuilder& builder);

// Convenience: parse from an in-memory string.
AsGraph ParseCaidaRelationships(std::string_view text);

// Loads a file from disk. Throws Error if the file cannot be opened.
AsGraph LoadCaidaFile(const std::string& path);

// Serializes the graph's edges in CAIDA format. serial-2 emits "|bgp" as
// the source for every edge.
void WriteCaidaRelationships(const AsGraph& graph, std::ostream& out,
                             CaidaFormat format = CaidaFormat::kSerial1);
std::string FormatCaidaRelationships(const AsGraph& graph,
                                     CaidaFormat format = CaidaFormat::kSerial1);

}  // namespace flatnet

#endif  // FLATNET_ASGRAPH_CAIDA_H_
