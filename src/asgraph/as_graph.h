// AS-level topology graph with typed business relationships.
//
// The graph is immutable after construction (build with AsGraphBuilder or
// load a binary topology store). ASes are addressed internally by dense
// ids so algorithm state lives in flat arrays; external AS numbers map
// bidirectionally. Adjacency is stored in a CSR layout, grouped by
// relationship (customers, then peers, then providers) so the BGP
// propagation phases can iterate exactly the slice they need.
//
// Storage is a shared immutable block behind column spans: the builder
// path owns plain vectors, the binary loader serves the same columns
// straight out of a memory-mapped file without rebuilding adjacency.
// Copying an AsGraph copies spans and a shared_ptr, never the columns.
#ifndef FLATNET_ASGRAPH_AS_GRAPH_H_
#define FLATNET_ASGRAPH_AS_GRAPH_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace flatnet {

// External AS number (as seen in BGP).
using Asn = std::uint32_t;
// Dense internal index in [0, num_ases).
using AsId = std::uint32_t;

inline constexpr AsId kInvalidAsId = 0xffffffffu;

// Relationship of a neighbor *from this node's perspective*.
enum class Relationship : std::uint8_t {
  kCustomer = 0,  // neighbor pays this node for transit
  kPeer = 1,      // settlement-free peer
  kProvider = 2,  // this node pays the neighbor for transit
};

// Undirected edge annotation as stored in datasets.
enum class EdgeType : std::uint8_t {
  kP2C,  // first AS is provider of the second
  kP2P,  // settlement-free peering
};

const char* ToString(Relationship rel);
const char* ToString(EdgeType type);

struct Neighbor {
  AsId id;
  Relationship rel;
};

class AsGraph;

// Accumulates ASes and edges, then builds the immutable AsGraph.
class AsGraphBuilder {
 public:
  // Registers an AS (idempotent); returns its dense id.
  AsId AddAs(Asn asn);

  // Adds an edge between two ASNs (registering them if needed). Identical
  // duplicate edges are ignored; conflicting duplicates (same pair, other
  // type or reversed p2c orientation) throw InvalidArgument.
  void AddEdge(Asn a, Asn b, EdgeType type);

  // Adds the edge only when no edge exists between the pair yet; returns
  // true if added. This is the §4.1 merge rule: traceroute-discovered links
  // become p2p but never override a relationship already in the base data.
  bool AddEdgeIfAbsent(Asn a, Asn b, EdgeType type);

  bool HasAs(Asn asn) const { return id_of_.contains(asn); }
  bool HasEdge(Asn a, Asn b) const;

  std::size_t num_ases() const { return asn_of_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  AsGraph Build() &&;

 private:
  struct Edge {
    AsId a;  // provider side for kP2C
    AsId b;
    EdgeType type;
  };

  static std::uint64_t PairKey(AsId x, AsId y);

  std::vector<Asn> asn_of_;
  std::unordered_map<Asn, AsId> id_of_;
  std::vector<Edge> edges_;
  std::unordered_map<std::uint64_t, std::uint32_t> edge_index_;  // pair key -> index in edges_
};

class AsGraph {
 public:
  // The raw column set behind a graph. This is the unit the binary
  // topology store persists and the streaming generator assembles: the
  // dense-id → ASN map, the ids sorted by ASN (the IdOf index), the
  // interleaved CSR slice bounds, and the flat neighbor-id array.
  struct Columns {
    std::vector<Asn> asn_of;
    // Dense ids ordered by ascending ASN; empty → derived by FromColumns.
    std::vector<AsId> by_asn;
    std::vector<std::uint32_t> slice;
    std::vector<AsId> entry_ids;
  };

  AsGraph() = default;

  // Assembles a graph that owns `columns` (builder and streaming-generator
  // paths). Validates CSR shape in O(n + E); throws Error naming `what`
  // on any inconsistency.
  static AsGraph FromColumns(Columns columns, const std::string& what);

  // Assembles a graph over externally owned columns — the memory-mapped
  // loader path. `keeper` owns the bytes behind every span and is held
  // alive for the graph's lifetime; adjacency is served in place, never
  // rebuilt. Same validation as the owning overload.
  static AsGraph FromColumns(std::span<const Asn> asn_of, std::span<const AsId> by_asn,
                             std::span<const std::uint32_t> slice,
                             std::span<const AsId> entry_ids,
                             std::shared_ptr<const void> keeper, const std::string& what);

  std::size_t num_ases() const { return asn_of_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  Asn AsnOf(AsId id) const { return asn_of_[id]; }
  std::optional<AsId> IdOf(Asn asn) const;

  // All neighbors of `id`, customers first, then peers, then providers;
  // each group sorted by neighbor id.
  std::span<const Neighbor> NeighborsOf(AsId id) const;

  std::span<const Neighbor> Customers(AsId id) const;
  std::span<const Neighbor> Peers(AsId id) const;
  std::span<const Neighbor> Providers(AsId id) const;

  // Ids-only views of the same CSR slices. The relationship is implied by
  // the slice, so the propagation kernels stream 4-byte ids instead of
  // 8-byte Neighbor entries — half the memory traffic on the BFS/relax
  // inner loops, which walk these sequentially per frontier node.
  std::span<const AsId> CustomerIds(AsId id) const;
  std::span<const AsId> PeerIds(AsId id) const;
  std::span<const AsId> ProviderIds(AsId id) const;

  // Prefetches the CSR bounds of `id`. The frontier loops call this a few
  // queue slots ahead so the dependent offset → id-array loads are in
  // flight by the time the node is popped.
  void PrefetchAdjacency(AsId id) const { __builtin_prefetch(&slice_[3 * id]); }

  std::size_t Degree(AsId id) const { return NeighborsOf(id).size(); }
  std::size_t CustomerCount(AsId id) const { return Customers(id).size(); }
  std::size_t PeerCount(AsId id) const { return Peers(id).size(); }
  std::size_t ProviderCount(AsId id) const { return Providers(id).size(); }

  // Relationship of `to` from `from`'s perspective, if adjacent.
  std::optional<Relationship> RelationshipBetween(AsId from, AsId to) const;

  // Edge list in dataset orientation (provider first for p2c).
  struct Edge {
    Asn a;
    Asn b;
    EdgeType type;
  };
  std::vector<Edge> EdgeList() const;

  // Raw column views for the binary store writer. Valid for the graph's
  // lifetime.
  std::span<const Asn> AsnColumn() const { return asn_of_; }
  std::span<const AsId> ByAsnColumn() const { return by_asn_; }
  std::span<const std::uint32_t> SliceColumn() const { return slice_; }
  std::span<const AsId> EntryIdsColumn() const { return entry_ids_; }

 private:
  // Owns the memory behind every span below: the moved-in column vectors
  // or a mapped file, plus the derived typed Neighbor array. Copies of the
  // graph share it — the graph is immutable, so sharing is safe and makes
  // copies O(1) at any scale.
  std::shared_ptr<const void> storage_;

  std::span<const Asn> asn_of_;
  // Dense ids sorted by ascending ASN; IdOf binary-searches this instead
  // of keeping a hash map, so the index is servable straight from a
  // mapped file and costs 4 bytes per AS.
  std::span<const AsId> by_asn_;
  std::size_t num_edges_ = 0;

  // CSR adjacency. slice_ interleaves the per-node bounds — for node i,
  // slice_[3i] is the start of its entries, slice_[3i+1] the end of the
  // customer group, slice_[3i+2] the end of the peer group, and
  // slice_[3i+3] (the next node's start; slice_[3n] overall) the end of
  // the provider group. Interleaving puts all of a node's bounds on one
  // cache line — the BFS/relax kernels hit these for every frontier node
  // in random order, where three separate offset arrays cost three misses.
  // 32-bit offsets (validated on construction) halve the footprint.
  std::span<const std::uint32_t> slice_;
  // entries_[k] pairs entry_ids_[k] with the relationship implied by its
  // slice; derived in one sequential pass on construction (it is the only
  // column not persisted — the relationship is redundant on disk).
  std::span<const Neighbor> entries_;
  std::span<const AsId> entry_ids_;
};

}  // namespace flatnet

#endif  // FLATNET_ASGRAPH_AS_GRAPH_H_
