// AS-level topology graph with typed business relationships.
//
// The graph is immutable after construction (build with AsGraphBuilder).
// ASes are addressed internally by dense ids so algorithm state lives in
// flat arrays; external AS numbers map bidirectionally. Adjacency is stored
// in a CSR layout, grouped by relationship (customers, then peers, then
// providers) so the BGP propagation phases can iterate exactly the slice
// they need.
#ifndef FLATNET_ASGRAPH_AS_GRAPH_H_
#define FLATNET_ASGRAPH_AS_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace flatnet {

// External AS number (as seen in BGP).
using Asn = std::uint32_t;
// Dense internal index in [0, num_ases).
using AsId = std::uint32_t;

inline constexpr AsId kInvalidAsId = 0xffffffffu;

// Relationship of a neighbor *from this node's perspective*.
enum class Relationship : std::uint8_t {
  kCustomer = 0,  // neighbor pays this node for transit
  kPeer = 1,      // settlement-free peer
  kProvider = 2,  // this node pays the neighbor for transit
};

// Undirected edge annotation as stored in datasets.
enum class EdgeType : std::uint8_t {
  kP2C,  // first AS is provider of the second
  kP2P,  // settlement-free peering
};

const char* ToString(Relationship rel);
const char* ToString(EdgeType type);

struct Neighbor {
  AsId id;
  Relationship rel;
};

class AsGraph;

// Accumulates ASes and edges, then builds the immutable AsGraph.
class AsGraphBuilder {
 public:
  // Registers an AS (idempotent); returns its dense id.
  AsId AddAs(Asn asn);

  // Adds an edge between two ASNs (registering them if needed). Identical
  // duplicate edges are ignored; conflicting duplicates (same pair, other
  // type or reversed p2c orientation) throw InvalidArgument.
  void AddEdge(Asn a, Asn b, EdgeType type);

  // Adds the edge only when no edge exists between the pair yet; returns
  // true if added. This is the §4.1 merge rule: traceroute-discovered links
  // become p2p but never override a relationship already in the base data.
  bool AddEdgeIfAbsent(Asn a, Asn b, EdgeType type);

  bool HasAs(Asn asn) const { return id_of_.contains(asn); }
  bool HasEdge(Asn a, Asn b) const;

  std::size_t num_ases() const { return asn_of_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  AsGraph Build() &&;

 private:
  friend class AsGraph;

  struct Edge {
    AsId a;  // provider side for kP2C
    AsId b;
    EdgeType type;
  };

  static std::uint64_t PairKey(AsId x, AsId y);

  std::vector<Asn> asn_of_;
  std::unordered_map<Asn, AsId> id_of_;
  std::vector<Edge> edges_;
  std::unordered_map<std::uint64_t, std::uint32_t> edge_index_;  // pair key -> index in edges_
};

class AsGraph {
 public:
  AsGraph() = default;

  std::size_t num_ases() const { return asn_of_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  Asn AsnOf(AsId id) const { return asn_of_[id]; }
  std::optional<AsId> IdOf(Asn asn) const;

  // All neighbors of `id`, customers first, then peers, then providers;
  // each group sorted by neighbor id.
  std::span<const Neighbor> NeighborsOf(AsId id) const;

  std::span<const Neighbor> Customers(AsId id) const;
  std::span<const Neighbor> Peers(AsId id) const;
  std::span<const Neighbor> Providers(AsId id) const;

  // Ids-only views of the same CSR slices. The relationship is implied by
  // the slice, so the propagation kernels stream 4-byte ids instead of
  // 8-byte Neighbor entries — half the memory traffic on the BFS/relax
  // inner loops, which walk these sequentially per frontier node.
  std::span<const AsId> CustomerIds(AsId id) const;
  std::span<const AsId> PeerIds(AsId id) const;
  std::span<const AsId> ProviderIds(AsId id) const;

  // Prefetches the CSR bounds of `id`. The frontier loops call this a few
  // queue slots ahead so the dependent offset → id-array loads are in
  // flight by the time the node is popped.
  void PrefetchAdjacency(AsId id) const { __builtin_prefetch(&slice_[3 * id]); }

  std::size_t Degree(AsId id) const { return NeighborsOf(id).size(); }
  std::size_t CustomerCount(AsId id) const { return Customers(id).size(); }
  std::size_t PeerCount(AsId id) const { return Peers(id).size(); }
  std::size_t ProviderCount(AsId id) const { return Providers(id).size(); }

  // Relationship of `to` from `from`'s perspective, if adjacent.
  std::optional<Relationship> RelationshipBetween(AsId from, AsId to) const;

  // Edge list in dataset orientation (provider first for p2c).
  struct Edge {
    Asn a;
    Asn b;
    EdgeType type;
  };
  std::vector<Edge> EdgeList() const;

 private:
  friend class AsGraphBuilder;

  std::vector<Asn> asn_of_;
  std::unordered_map<Asn, AsId> id_of_;
  std::size_t num_edges_ = 0;

  // CSR adjacency. slice_ interleaves the per-node bounds — for node i,
  // slice_[3i] is the start of its entries, slice_[3i+1] the end of the
  // customer group, slice_[3i+2] the end of the peer group, and
  // slice_[3i+3] (the next node's start; slice_[3n] overall) the end of
  // the provider group. Interleaving puts all of a node's bounds on one
  // cache line — the BFS/relax kernels hit these for every frontier node
  // in random order, where three separate offset arrays cost three misses.
  // 32-bit offsets (Build() checks the bound) halve the footprint.
  std::vector<std::uint32_t> slice_;
  std::vector<Neighbor> entries_;
  // entry_ids_[k] == entries_[k].id — the compact array behind the *Ids
  // accessors.
  std::vector<AsId> entry_ids_;
};

}  // namespace flatnet

#endif  // FLATNET_ASGRAPH_AS_GRAPH_H_
