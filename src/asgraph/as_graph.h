// AS-level topology graph with typed business relationships.
//
// The graph is immutable after construction (build with AsGraphBuilder).
// ASes are addressed internally by dense ids so algorithm state lives in
// flat arrays; external AS numbers map bidirectionally. Adjacency is stored
// in a CSR layout, grouped by relationship (customers, then peers, then
// providers) so the BGP propagation phases can iterate exactly the slice
// they need.
#ifndef FLATNET_ASGRAPH_AS_GRAPH_H_
#define FLATNET_ASGRAPH_AS_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace flatnet {

// External AS number (as seen in BGP).
using Asn = std::uint32_t;
// Dense internal index in [0, num_ases).
using AsId = std::uint32_t;

inline constexpr AsId kInvalidAsId = 0xffffffffu;

// Relationship of a neighbor *from this node's perspective*.
enum class Relationship : std::uint8_t {
  kCustomer = 0,  // neighbor pays this node for transit
  kPeer = 1,      // settlement-free peer
  kProvider = 2,  // this node pays the neighbor for transit
};

// Undirected edge annotation as stored in datasets.
enum class EdgeType : std::uint8_t {
  kP2C,  // first AS is provider of the second
  kP2P,  // settlement-free peering
};

const char* ToString(Relationship rel);
const char* ToString(EdgeType type);

struct Neighbor {
  AsId id;
  Relationship rel;
};

class AsGraph;

// Accumulates ASes and edges, then builds the immutable AsGraph.
class AsGraphBuilder {
 public:
  // Registers an AS (idempotent); returns its dense id.
  AsId AddAs(Asn asn);

  // Adds an edge between two ASNs (registering them if needed). Identical
  // duplicate edges are ignored; conflicting duplicates (same pair, other
  // type or reversed p2c orientation) throw InvalidArgument.
  void AddEdge(Asn a, Asn b, EdgeType type);

  // Adds the edge only when no edge exists between the pair yet; returns
  // true if added. This is the §4.1 merge rule: traceroute-discovered links
  // become p2p but never override a relationship already in the base data.
  bool AddEdgeIfAbsent(Asn a, Asn b, EdgeType type);

  bool HasAs(Asn asn) const { return id_of_.contains(asn); }
  bool HasEdge(Asn a, Asn b) const;

  std::size_t num_ases() const { return asn_of_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  AsGraph Build() &&;

 private:
  friend class AsGraph;

  struct Edge {
    AsId a;  // provider side for kP2C
    AsId b;
    EdgeType type;
  };

  static std::uint64_t PairKey(AsId x, AsId y);

  std::vector<Asn> asn_of_;
  std::unordered_map<Asn, AsId> id_of_;
  std::vector<Edge> edges_;
  std::unordered_map<std::uint64_t, std::uint32_t> edge_index_;  // pair key -> index in edges_
};

class AsGraph {
 public:
  AsGraph() = default;

  std::size_t num_ases() const { return asn_of_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  Asn AsnOf(AsId id) const { return asn_of_[id]; }
  std::optional<AsId> IdOf(Asn asn) const;

  // All neighbors of `id`, customers first, then peers, then providers;
  // each group sorted by neighbor id.
  std::span<const Neighbor> NeighborsOf(AsId id) const;

  std::span<const Neighbor> Customers(AsId id) const;
  std::span<const Neighbor> Peers(AsId id) const;
  std::span<const Neighbor> Providers(AsId id) const;

  std::size_t Degree(AsId id) const { return NeighborsOf(id).size(); }
  std::size_t CustomerCount(AsId id) const { return Customers(id).size(); }
  std::size_t PeerCount(AsId id) const { return Peers(id).size(); }
  std::size_t ProviderCount(AsId id) const { return Providers(id).size(); }

  // Relationship of `to` from `from`'s perspective, if adjacent.
  std::optional<Relationship> RelationshipBetween(AsId from, AsId to) const;

  // Edge list in dataset orientation (provider first for p2c).
  struct Edge {
    Asn a;
    Asn b;
    EdgeType type;
  };
  std::vector<Edge> EdgeList() const;

 private:
  friend class AsGraphBuilder;

  std::vector<Asn> asn_of_;
  std::unordered_map<Asn, AsId> id_of_;
  std::size_t num_edges_ = 0;

  // CSR adjacency. For node i the neighbors live in
  // entries_[offsets_[i] .. offsets_[i+1]); customers occupy
  // [offsets_[i], customers_end_[i]), peers [customers_end_[i],
  // peers_end_[i]), providers [peers_end_[i], offsets_[i+1]).
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint64_t> customers_end_;
  std::vector<std::uint64_t> peers_end_;
  std::vector<Neighbor> entries_;
};

}  // namespace flatnet

#endif  // FLATNET_ASGRAPH_AS_GRAPH_H_
