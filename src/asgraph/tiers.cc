#include "asgraph/tiers.h"

#include <algorithm>
#include <numeric>

#include "asgraph/cone.h"

namespace flatnet {

Bitset TierSets::HierarchyMask() const {
  Bitset mask = tier1_mask;
  mask |= tier2_mask;
  return mask;
}

TierSets InferTierSets(const AsGraph& graph, const TierInferenceOptions& options) {
  std::size_t n = graph.num_ases();
  std::vector<std::uint32_t> cones = CustomerConeSizes(graph);

  // Candidates: largest customer cones first.
  std::vector<AsId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](AsId a, AsId b) { return cones[a] > cones[b]; });
  std::size_t pool = std::min<std::size_t>(options.clique_candidates, n);

  // Grow the clique greedily: every member must peer with every other and
  // have no transit provider (Tier-1s buy transit from nobody).
  std::vector<AsId> clique;
  for (std::size_t i = 0; i < pool && clique.size() < options.max_clique_size; ++i) {
    AsId candidate = order[i];
    if (!graph.Providers(candidate).empty()) continue;
    bool mutual = std::all_of(clique.begin(), clique.end(), [&](AsId member) {
      return graph.RelationshipBetween(candidate, member) == Relationship::kPeer;
    });
    if (mutual) clique.push_back(candidate);
  }

  TierSets tiers;
  tiers.tier1 = clique;
  tiers.tier1_mask.Resize(n);
  for (AsId id : clique) tiers.tier1_mask.Set(id);

  // Tier-2: the next largest transit ASes (by cone) outside the clique that
  // touch the clique (peer with or buy from a Tier-1). "Touching" weeds out
  // large but isolated regional hierarchies.
  for (std::size_t i = 0; i < n && tiers.tier2.size() < options.tier2_count; ++i) {
    AsId candidate = order[i];
    if (tiers.tier1_mask.Test(candidate)) continue;
    if (cones[candidate] < 2) break;  // no transit role at all
    bool touches_clique = false;
    for (const Neighbor& nb : graph.NeighborsOf(candidate)) {
      if (tiers.tier1_mask.Test(nb.id)) {
        touches_clique = true;
        break;
      }
    }
    if (touches_clique) tiers.tier2.push_back(candidate);
  }
  tiers.tier2_mask.Resize(n);
  for (AsId id : tiers.tier2) tiers.tier2_mask.Set(id);
  return tiers;
}

TierSets MakeTierSets(const AsGraph& graph, const std::vector<Asn>& tier1_asns,
                      const std::vector<Asn>& tier2_asns) {
  TierSets tiers;
  tiers.tier1_mask.Resize(graph.num_ases());
  tiers.tier2_mask.Resize(graph.num_ases());
  for (Asn asn : tier1_asns) {
    if (auto id = graph.IdOf(asn)) {
      tiers.tier1.push_back(*id);
      tiers.tier1_mask.Set(*id);
    }
  }
  for (Asn asn : tier2_asns) {
    if (auto id = graph.IdOf(asn)) {
      if (tiers.tier1_mask.Test(*id)) continue;  // tier-1 wins on overlap
      tiers.tier2.push_back(*id);
      tiers.tier2_mask.Set(*id);
    }
  }
  return tiers;
}

}  // namespace flatnet
