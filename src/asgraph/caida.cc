#include "asgraph/caida.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace flatnet {

void ReadCaidaRelationships(std::istream& in, AsGraphBuilder& builder) {
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = Trim(line);
    if (view.empty() || view.front() == '#') continue;
    auto fields = Split(view, '|');
    if (fields.size() != 3 && fields.size() != 4) {
      throw ParseError(StrFormat("CAIDA line %zu: expected 3 or 4 fields, got %zu",
                                 line_number, fields.size()));
    }
    auto a = ParseU64(fields[0]);
    auto b = ParseU64(fields[1]);
    auto rel = ParseI64(fields[2]);
    if (!a || !b || !rel || (*rel != -1 && *rel != 0)) {
      throw ParseError(StrFormat("CAIDA line %zu: malformed record '%s'", line_number,
                                 std::string(view).c_str()));
    }
    EdgeType type = (*rel == -1) ? EdgeType::kP2C : EdgeType::kP2P;
    builder.AddEdge(static_cast<Asn>(*a), static_cast<Asn>(*b), type);
  }
}

AsGraph ParseCaidaRelationships(std::string_view text) {
  std::istringstream in{std::string(text)};
  AsGraphBuilder builder;
  ReadCaidaRelationships(in, builder);
  return std::move(builder).Build();
}

AsGraph LoadCaidaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("LoadCaidaFile: cannot open " + path);
  AsGraphBuilder builder;
  try {
    ReadCaidaRelationships(in, builder);
  } catch (const ParseError& e) {
    // The stream parser only knows line numbers; prefix the path so a
    // corrupt on-disk cache names the exact file to inspect.
    throw ParseError(path + ": " + e.what());
  }
  return std::move(builder).Build();
}

void WriteCaidaRelationships(const AsGraph& graph, std::ostream& out, CaidaFormat format) {
  out << "# flatnet AS-relationship export\n";
  out << "# <provider|peer>|<customer|peer>|<-1: p2c, 0: p2p>";
  if (format == CaidaFormat::kSerial2) out << "|<source>";
  out << "\n";
  for (const AsGraph::Edge& e : graph.EdgeList()) {
    out << e.a << '|' << e.b << '|' << (e.type == EdgeType::kP2C ? "-1" : "0");
    if (format == CaidaFormat::kSerial2) out << "|bgp";
    out << '\n';
  }
}

std::string FormatCaidaRelationships(const AsGraph& graph, CaidaFormat format) {
  std::ostringstream out;
  WriteCaidaRelationships(graph, out, format);
  return out.str();
}

}  // namespace flatnet
