#include "asgraph/cone.h"

#include <vector>

namespace flatnet {

Bitset CustomerCone(const AsGraph& graph, AsId root) {
  Bitset cone(graph.num_ases());
  std::vector<AsId> stack{root};
  cone.Set(root);
  while (!stack.empty()) {
    AsId node = stack.back();
    stack.pop_back();
    for (const Neighbor& n : graph.Customers(node)) {
      if (!cone.Test(n.id)) {
        cone.Set(n.id);
        stack.push_back(n.id);
      }
    }
  }
  return cone;
}

std::vector<std::uint32_t> CustomerConeSizes(const AsGraph& graph) {
  std::size_t n = graph.num_ases();
  std::vector<std::uint32_t> sizes(n, 1);
  // Reused scratch to avoid per-AS allocation; epoch-stamped visited array.
  std::vector<std::uint32_t> visited_epoch(n, 0);
  std::vector<AsId> stack;
  std::uint32_t epoch = 0;
  for (AsId root = 0; root < n; ++root) {
    if (graph.Customers(root).empty()) continue;  // stub: cone is {self}
    ++epoch;
    visited_epoch[root] = epoch;
    stack.assign(1, root);
    std::uint32_t count = 1;
    while (!stack.empty()) {
      AsId node = stack.back();
      stack.pop_back();
      for (const Neighbor& nb : graph.Customers(node)) {
        if (visited_epoch[nb.id] != epoch) {
          visited_epoch[nb.id] = epoch;
          ++count;
          stack.push_back(nb.id);
        }
      }
    }
    sizes[root] = count;
  }
  return sizes;
}

std::vector<std::uint32_t> TransitDegrees(const AsGraph& graph) {
  std::size_t n = graph.num_ases();
  std::vector<std::uint32_t> degrees(n);
  for (AsId i = 0; i < n; ++i) {
    degrees[i] = static_cast<std::uint32_t>(graph.CustomerCount(i) + graph.ProviderCount(i));
  }
  return degrees;
}

std::vector<std::uint32_t> NodeDegrees(const AsGraph& graph) {
  std::size_t n = graph.num_ases();
  std::vector<std::uint32_t> degrees(n);
  for (AsId i = 0; i < n; ++i) degrees[i] = static_cast<std::uint32_t>(graph.Degree(i));
  return degrees;
}

}  // namespace flatnet
