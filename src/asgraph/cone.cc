#include "asgraph/cone.h"

#include <vector>

#include "util/epoch.h"
#include "util/narrow.h"

namespace flatnet {

Bitset CustomerCone(const AsGraph& graph, AsId root) {
  Bitset cone(graph.num_ases());
  std::vector<AsId> stack{root};
  cone.Set(root);
  while (!stack.empty()) {
    AsId node = stack.back();
    stack.pop_back();
    for (const Neighbor& n : graph.Customers(node)) {
      if (!cone.Test(n.id)) {
        cone.Set(n.id);
        stack.push_back(n.id);
      }
    }
  }
  return cone;
}

std::vector<std::uint32_t> CustomerConeSizes(const AsGraph& graph) {
  std::size_t n = graph.num_ases();
  std::vector<std::uint32_t> sizes(n, 1);
  // Reused scratch to avoid per-AS allocation; EpochStamps carries the
  // wraparound guard (stale stamps can never alias as visited).
  EpochStamps visited(n);
  std::vector<AsId> stack;
  for (AsId root = 0; root < n; ++root) {
    if (graph.Customers(root).empty()) continue;  // stub: cone is {self}
    visited.NextEpoch();
    visited.MarkVisited(root);
    stack.assign(1, root);
    std::uint32_t count = 1;
    while (!stack.empty()) {
      AsId node = stack.back();
      stack.pop_back();
      for (const Neighbor& nb : graph.Customers(node)) {
        if (visited.TryVisit(nb.id)) {
          ++count;
          stack.push_back(nb.id);
        }
      }
    }
    sizes[root] = count;
  }
  return sizes;
}

std::vector<std::uint32_t> TransitDegrees(const AsGraph& graph) {
  std::size_t n = graph.num_ases();
  std::vector<std::uint32_t> degrees(n);
  for (AsId i = 0; i < n; ++i) {
    degrees[i] =
        CheckedNarrow32(graph.CustomerCount(i) + graph.ProviderCount(i), "TransitDegrees");
  }
  return degrees;
}

std::vector<std::uint32_t> NodeDegrees(const AsGraph& graph) {
  std::size_t n = graph.num_ases();
  std::vector<std::uint32_t> degrees(n);
  for (AsId i = 0; i < n; ++i) degrees[i] = CheckedNarrow32(graph.Degree(i), "NodeDegrees");
  return degrees;
}

}  // namespace flatnet
