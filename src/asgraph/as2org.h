// Readers for CAIDA's AS-to-organization and AS-classification datasets
// (§4.3's inputs: "CAIDA classifies AS into three types" and the inferred
// AS-to-organization mapping).
//
// as2org (pipe-delimited sections):
//   # format:org_id|changed|org_name|country|source
//   ORG-1|20200101|Example Org|US|ARIN
//   # format:aut|changed|aut_name|org_id|opaque_id|source
//   15169|20200101|GOOGLE|ORG-1||ARIN
//
// as2type:
//   # format: as|source|type        (type in {Transit/Access, Content,
//   15169|CAIDA_class|Content        Enterprise})
#ifndef FLATNET_ASGRAPH_AS2ORG_H_
#define FLATNET_ASGRAPH_AS2ORG_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asgraph/as_graph.h"
#include "asgraph/metadata.h"

namespace flatnet {

struct Organization {
  std::string id;
  std::string name;
  std::string country;
};

class OrgMap {
 public:
  // Registers an organization (idempotent by id; later entries win).
  void AddOrganization(Organization org);
  void AssignAs(Asn asn, const std::string& org_id);

  std::optional<std::string> OrgIdOf(Asn asn) const;
  const Organization* OrgOf(Asn asn) const;
  std::size_t organization_count() const { return orgs_.size(); }
  std::size_t mapped_as_count() const { return org_of_.size(); }

  // All ASNs mapped to the same organization as `asn` (including itself);
  // {asn} when unmapped. This is how sibling ASes (e.g. one company's
  // regional ASNs) are grouped before counting "networks".
  std::vector<Asn> SiblingsOf(Asn asn) const;

 private:
  std::unordered_map<std::string, Organization> orgs_;
  std::unordered_map<Asn, std::string> org_of_;
  std::unordered_map<std::string, std::vector<Asn>> members_;
};

// Parses the as2org format. Throws ParseError on malformed records.
OrgMap ReadAs2Org(std::istream& in);
OrgMap ParseAs2Org(std::string_view text);

// Parses the as2type format into ASN -> AsType (Transit/Access -> kTransit;
// the §4.3 user-based reclassification happens separately).
std::unordered_map<Asn, AsType> ReadAs2Type(std::istream& in);
std::unordered_map<Asn, AsType> ParseAs2Type(std::string_view text);

// Applies a type map onto metadata (unknown ASNs left untouched), then
// reclassifies transit/access by users per §4.3.
void ApplyTypes(const AsGraph& graph, const std::unordered_map<Asn, AsType>& types,
                AsMetadata& metadata);

}  // namespace flatnet

#endif  // FLATNET_ASGRAPH_AS2ORG_H_
