// Tier-1 clique and Tier-2 identification.
//
// The paper takes the Tier-1/Tier-2 lists from ProbLink/AS-Rank; on real
// CAIDA data those lists ship with the dataset. For arbitrary graphs this
// module infers them: the Tier-1 clique is grown greedily over mutual
// peering from the highest-cone AS (AS-Rank's clique heuristic), and the
// Tier-2 set is the next band of large transit ASes connected to the
// clique.
#ifndef FLATNET_ASGRAPH_TIERS_H_
#define FLATNET_ASGRAPH_TIERS_H_

#include <cstdint>
#include <vector>

#include "asgraph/as_graph.h"
#include "util/bitset.h"

namespace flatnet {

struct TierSets {
  std::vector<AsId> tier1;
  std::vector<AsId> tier2;
  Bitset tier1_mask;  // size == graph.num_ases()
  Bitset tier2_mask;

  // Union mask (Tier-1 | Tier-2), the "Internet hierarchy" of the title.
  Bitset HierarchyMask() const;
};

struct TierInferenceOptions {
  // Candidate pool size for the clique search (top ASes by customer cone).
  std::uint32_t clique_candidates = 40;
  // Upper bound on clique size (the real Internet has ~17-20 Tier-1s).
  std::uint32_t max_clique_size = 20;
  // Number of Tier-2 ASes to select (paper's Tier-2 list has ~24).
  std::uint32_t tier2_count = 24;
};

// Infers tier sets from graph structure alone.
TierSets InferTierSets(const AsGraph& graph, const TierInferenceOptions& options = {});

// Builds tier sets from explicit AS number lists (e.g. the ProbLink lists
// when reproducing on real CAIDA data). Unknown ASNs are ignored.
TierSets MakeTierSets(const AsGraph& graph, const std::vector<Asn>& tier1_asns,
                      const std::vector<Asn>& tier2_asns);

}  // namespace flatnet

#endif  // FLATNET_ASGRAPH_TIERS_H_
