// Per-AS metadata carried alongside the relationship graph: display name,
// business category (§4.3's content/transit/access/enterprise taxonomy plus
// an explicit cloud tag), and the APNIC-style estimated user population.
#ifndef FLATNET_ASGRAPH_METADATA_H_
#define FLATNET_ASGRAPH_METADATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"

namespace flatnet {

// §4.3 taxonomy. CAIDA's classifier emits content / transit-access /
// enterprise; the paper splits transit-access into "transit" and "access"
// (access = has users in the APNIC dataset), and we tag the four studied
// cloud providers explicitly.
enum class AsType : std::uint8_t {
  kTransit = 0,
  kAccess = 1,
  kContent = 2,
  kEnterprise = 3,
  kCloud = 4,
};

const char* ToString(AsType type);

struct AsInfo {
  std::string name;
  AsType type = AsType::kEnterprise;
  // Estimated Internet users in this AS (APNIC-style eyeball estimate).
  double users = 0.0;
};

// Parallel-array metadata store, indexed by AsId.
class AsMetadata {
 public:
  AsMetadata() = default;
  explicit AsMetadata(std::size_t num_ases) : info_(num_ases) {}

  std::size_t size() const { return info_.size(); }

  const AsInfo& Get(AsId id) const { return info_[id]; }
  AsInfo& GetMutable(AsId id) { return info_[id]; }

  // Sum of users across all ASes.
  double TotalUsers() const;

  // Count of ASes per type.
  std::vector<std::size_t> TypeCounts() const;

 private:
  std::vector<AsInfo> info_;
};

// Applies the paper's classification rule to raw CAIDA-style labels: an AS
// labeled transit/access that has users becomes kAccess, otherwise
// kTransit. kCloud/kContent/kEnterprise pass through.
AsType ReclassifyWithUsers(AsType caida_label, double users);

}  // namespace flatnet

#endif  // FLATNET_ASGRAPH_METADATA_H_
