#include "asgraph/as2org.h"

#include <istream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace flatnet {

void OrgMap::AddOrganization(Organization org) { orgs_[org.id] = std::move(org); }

void OrgMap::AssignAs(Asn asn, const std::string& org_id) {
  auto it = org_of_.find(asn);
  if (it != org_of_.end()) {
    // Re-assignment: remove from the previous org's member list.
    auto& members = members_[it->second];
    std::erase(members, asn);
  }
  org_of_[asn] = org_id;
  members_[org_id].push_back(asn);
}

std::optional<std::string> OrgMap::OrgIdOf(Asn asn) const {
  if (auto it = org_of_.find(asn); it != org_of_.end()) return it->second;
  return std::nullopt;
}

const Organization* OrgMap::OrgOf(Asn asn) const {
  auto id = OrgIdOf(asn);
  if (!id) return nullptr;
  auto it = orgs_.find(*id);
  return it == orgs_.end() ? nullptr : &it->second;
}

std::vector<Asn> OrgMap::SiblingsOf(Asn asn) const {
  auto id = OrgIdOf(asn);
  if (!id) return {asn};
  auto it = members_.find(*id);
  if (it == members_.end() || it->second.empty()) return {asn};
  return it->second;
}

OrgMap ReadAs2Org(std::istream& in) {
  OrgMap map;
  enum class Section { kUnknown, kOrg, kAut };
  Section section = Section::kUnknown;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = Trim(line);
    if (view.empty()) continue;
    if (view.front() == '#') {
      if (view.find("format:org") != std::string_view::npos) section = Section::kOrg;
      if (view.find("format:aut") != std::string_view::npos) section = Section::kAut;
      continue;
    }
    auto fields = Split(view, '|');
    if (section == Section::kOrg) {
      if (fields.size() < 5) {
        throw ParseError(StrFormat("as2org line %zu: org record needs 5 fields", line_number));
      }
      map.AddOrganization({std::string(fields[0]), std::string(fields[2]),
                           std::string(fields[3])});
    } else if (section == Section::kAut) {
      if (fields.size() < 6) {
        throw ParseError(StrFormat("as2org line %zu: aut record needs 6 fields", line_number));
      }
      auto asn = ParseU64(fields[0]);
      if (!asn) {
        throw ParseError(StrFormat("as2org line %zu: bad AS number", line_number));
      }
      map.AssignAs(static_cast<Asn>(*asn), std::string(fields[3]));
    } else {
      throw ParseError(StrFormat("as2org line %zu: record before any format header",
                                 line_number));
    }
  }
  return map;
}

OrgMap ParseAs2Org(std::string_view text) {
  std::istringstream in{std::string(text)};
  return ReadAs2Org(in);
}

std::unordered_map<Asn, AsType> ReadAs2Type(std::istream& in) {
  std::unordered_map<Asn, AsType> types;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = Trim(line);
    if (view.empty() || view.front() == '#') continue;
    auto fields = Split(view, '|');
    if (fields.size() != 3) {
      throw ParseError(StrFormat("as2type line %zu: expected 3 fields", line_number));
    }
    auto asn = ParseU64(fields[0]);
    if (!asn) throw ParseError(StrFormat("as2type line %zu: bad AS number", line_number));
    std::string type = AsciiLower(fields[2]);
    AsType parsed;
    if (type == "transit/access" || type == "transit" || type == "access") {
      parsed = AsType::kTransit;
    } else if (type == "content") {
      parsed = AsType::kContent;
    } else if (type == "enterprise" || type == "enterpise") {  // CAIDA typo happens
      parsed = AsType::kEnterprise;
    } else {
      throw ParseError(StrFormat("as2type line %zu: unknown type '%s'", line_number,
                                 type.c_str()));
    }
    types[static_cast<Asn>(*asn)] = parsed;
  }
  return types;
}

std::unordered_map<Asn, AsType> ParseAs2Type(std::string_view text) {
  std::istringstream in{std::string(text)};
  return ReadAs2Type(in);
}

void ApplyTypes(const AsGraph& graph, const std::unordered_map<Asn, AsType>& types,
                AsMetadata& metadata) {
  for (const auto& [asn, type] : types) {
    auto id = graph.IdOf(asn);
    if (!id) continue;
    AsInfo& info = metadata.GetMutable(*id);
    info.type = ReclassifyWithUsers(type, info.users);
  }
}

}  // namespace flatnet
