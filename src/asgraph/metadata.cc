#include "asgraph/metadata.h"

namespace flatnet {

const char* ToString(AsType type) {
  switch (type) {
    case AsType::kTransit: return "transit";
    case AsType::kAccess: return "access";
    case AsType::kContent: return "content";
    case AsType::kEnterprise: return "enterprise";
    case AsType::kCloud: return "cloud";
  }
  return "?";
}

double AsMetadata::TotalUsers() const {
  double total = 0.0;
  for (const AsInfo& info : info_) total += info.users;
  return total;
}

std::vector<std::size_t> AsMetadata::TypeCounts() const {
  std::vector<std::size_t> counts(5, 0);
  for (const AsInfo& info : info_) ++counts[static_cast<std::size_t>(info.type)];
  return counts;
}

AsType ReclassifyWithUsers(AsType caida_label, double users) {
  if (caida_label == AsType::kTransit || caida_label == AsType::kAccess) {
    return users > 0.0 ? AsType::kAccess : AsType::kTransit;
  }
  return caida_label;
}

}  // namespace flatnet
