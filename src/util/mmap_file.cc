#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"
#include "util/strings.h"

namespace flatnet {

MappedFile::MappedFile(const std::string& path, const char* label) : path_(path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw Error(StrFormat("%s: cannot open %s: %s", label, path.c_str(),
                          std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    throw Error(StrFormat("%s: cannot stat %s: %s", label, path.c_str(),
                          std::strerror(err)));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // mmap rejects zero-length maps; an empty store is invalid anyway, but
    // let the format checks produce the diagnostic on a valid pointer.
    ::close(fd);
    data_ = nullptr;
    return;
  }
  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  int err = errno;
  ::close(fd);
  if (map == MAP_FAILED) {
    throw Error(StrFormat("%s: cannot mmap %s (%zu bytes): %s", label, path.c_str(), size_,
                          std::strerror(err)));
  }
  data_ = map;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr && size_ != 0) ::munmap(data_, size_);
}

}  // namespace flatnet
