// Dynamic bitset tuned for the graph algorithms: reachable-AS sets,
// exclusion masks, and customer-cone membership. std::vector<bool> is too
// slow for popcounts and set algebra; this wraps raw 64-bit words.
#ifndef FLATNET_UTIL_BITSET_H_
#define FLATNET_UTIL_BITSET_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace flatnet {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t size, bool value = false);

  void Resize(std::size_t size, bool value = false);

  std::size_t size() const { return size_; }

  // Index bounds are checked in debug builds only (the sanitizer CI job
  // runs with assertions on); release builds keep the unchecked hot path —
  // an out-of-range index is undefined behaviour there.
  bool Test(std::size_t i) const {
    assert(i < size_ && "Bitset::Test: index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(std::size_t i) {
    assert(i < size_ && "Bitset::Set: index out of range");
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }
  void Reset(std::size_t i) {
    assert(i < size_ && "Bitset::Reset: index out of range");
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void Assign(std::size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  void SetAll();
  void ResetAll();

  std::size_t Count() const;
  bool Any() const;
  bool None() const { return !Any(); }

  // Word-level access for the propagation kernels: word w covers bits
  // [64w, 64w + 64). StoreWord on the last word masks bits beyond size().
  std::size_t num_words() const { return words_.size(); }
  std::uint64_t Word(std::size_t w) const {
    assert(w < words_.size() && "Bitset::Word: index out of range");
    return words_[w];
  }
  void StoreWord(std::size_t w, std::uint64_t bits);

  // Set algebra; operands must have equal size. Like Test/Set, the size
  // contract is asserted in debug builds only — the word loops below are
  // branch-free hot kernels in release, where a mismatched call is
  // undefined behaviour.
  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);
  Bitset& operator-=(const Bitset& other);  // set difference
  Bitset operator~() const;

  // Fused |= that returns how many bits were newly set, in one pass over
  // the words (saves a separate Count() sweep in union-accumulate loops).
  std::size_t OrCountNew(const Bitset& other);

  // |*this & ~other| without materializing the difference.
  std::size_t AndNotCount(const Bitset& other) const;

  bool operator==(const Bitset& other) const;

  // True if *this is a subset of `other`.
  bool IsSubsetOf(const Bitset& other) const;

  std::size_t CountAnd(const Bitset& other) const;

  // Calls fn(index) for every set bit, ascending.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        fn(w * 64 + bit);
        word &= word - 1;
      }
    }
  }

 private:
  void ClearTail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace flatnet

#endif  // FLATNET_UTIL_BITSET_H_
