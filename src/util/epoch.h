// Epoch-stamped visited scratch for repeated graph traversals.
//
// A traversal that runs once per origin cannot afford an O(n) clear of its
// visited array per call; instead every slot carries the epoch number of
// the last traversal that touched it, and "visited" means "stamp equals
// the current epoch". The catch is wraparound: 2^32 traversals later the
// u32 counter returns to 0 — the value every untouched slot still holds —
// and the whole graph would silently read as already-visited. NextEpoch()
// detects the wrap and clears the stamps, so the scheme is safe at any
// call count. ReachabilityEngine and CustomerConeSizes share this helper.
#ifndef FLATNET_UTIL_EPOCH_H_
#define FLATNET_UTIL_EPOCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace flatnet {

class EpochStamps {
 public:
  EpochStamps() = default;
  explicit EpochStamps(std::size_t n) : stamp_(n, 0) {}

  std::size_t size() const { return stamp_.size(); }

  // Starts a new traversal: afterwards every slot reads as unvisited.
  void NextEpoch() {
    if (++epoch_ == 0) {
      // Wrapped to 0, the initial stamp value: stale entries from 2^32
      // traversals ago would alias as visited. Restart from a clean slate.
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  bool Visited(std::size_t i) const { return stamp_[i] == epoch_; }
  void MarkVisited(std::size_t i) { stamp_[i] = epoch_; }

  // Marks `i` visited; returns true when it was unvisited before the call.
  bool TryVisit(std::size_t i) {
    if (stamp_[i] == epoch_) return false;
    stamp_[i] = epoch_;
    return true;
  }

  // Raw access for kernels that hoist `stamp[nb] != cur` into a tight
  // loop; `cur` is epoch() and must be captured after NextEpoch().
  std::uint32_t* data() { return stamp_.data(); }
  std::uint32_t epoch() const { return epoch_; }

  // Forces the counter for the wraparound regression tests (2^32 real
  // traversals are out of reach for a unit test).
  void SetEpochForTesting(std::uint32_t epoch) { epoch_ = epoch; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

}  // namespace flatnet

#endif  // FLATNET_UTIL_EPOCH_H_
