// Wall-clock stopwatch for bench reports.
#ifndef FLATNET_UTIL_STOPWATCH_H_
#define FLATNET_UTIL_STOPWATCH_H_

#include <chrono>

namespace flatnet {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flatnet

#endif  // FLATNET_UTIL_STOPWATCH_H_
