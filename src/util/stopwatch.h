// Wall-clock stopwatch for bench reports and trace spans.
//
// Supports pause/resume accumulation: a paused stopwatch freezes its
// elapsed time until resumed. Trace spans (obs/trace.h) use this to
// measure self time excluding children.
#ifndef FLATNET_UTIL_STOPWATCH_H_
#define FLATNET_UTIL_STOPWATCH_H_

#include <chrono>

namespace flatnet {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() {
    accumulated_ = Duration::zero();
    running_ = true;
    start_ = Clock::now();
  }

  // Freezes the elapsed time; no-op when already paused.
  void Pause() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  // Continues accumulating; no-op when already running.
  void Resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  bool running() const { return running_; }

  double ElapsedSeconds() const {
    Duration total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;
  Clock::time_point start_;
  Duration accumulated_ = Duration::zero();
  bool running_ = true;
};

}  // namespace flatnet

#endif  // FLATNET_UTIL_STOPWATCH_H_
