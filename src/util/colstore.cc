#include "util/colstore.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "util/crc32.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet::colstore {

void Append(std::string& out, const void* data, std::size_t len) {
  out.append(static_cast<const char*>(data), len);
}

void AppendMagicAndVersion(std::string& out, const Format& format) {
  Append(out, format.magic, kMagicBytes);
  AppendScalar(out, format.version);
}

void AppendFooter(std::string& out, const Format& format) {
  AppendScalar(out, Crc32(out.data(), out.size()));
  Append(out, format.end_magic, kMagicBytes);
}

void AtomicWriteFile(const std::string& path, const std::string& bytes, const char* op) {
  std::string tmp = StrFormat("%s.tmp%d", path.c_str(), static_cast<int>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error(StrFormat("%s: cannot write %s", op, tmp.c_str()));
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw Error(StrFormat("%s: write failure on %s", op, tmp.c_str()));
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw Error(StrFormat("%s: publish to %s failed: %s", op, path.c_str(),
                          ec.message().c_str()));
  }
}

std::string ReadFileBytes(const std::string& path, const char* label) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error(StrFormat("%s: cannot open %s", label, path.c_str()));
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    throw Error(StrFormat("%s: read failure on %s", label, path.c_str()));
  }
  return bytes;
}

void CheckHeader(const std::string& path, std::string_view bytes, const Format& format,
                 std::size_t min_bytes) {
  if (bytes.size() < min_bytes) {
    throw Error(StrFormat("%s:0: truncated %s store (%zu bytes, header+footer need %zu)",
                          path.c_str(), format.kind, bytes.size(), min_bytes));
  }
  if (std::memcmp(bytes.data(), format.magic, kMagicBytes) != 0) {
    throw Error(StrFormat("%s:0: bad magic (not a %s store)", path.c_str(), format.kind));
  }
  std::uint32_t version = ReadScalar<std::uint32_t>(bytes, kMagicBytes);
  if (version != format.version) {
    throw Error(StrFormat("%s:%zu: unsupported %s store version %u (expected %u)",
                          path.c_str(), kMagicBytes, format.kind, version, format.version));
  }
}

void CheckFooter(const std::string& path, std::string_view bytes, const Format& format) {
  std::size_t footer = bytes.size() - kFooterBytes;
  if (std::memcmp(bytes.data() + footer + 4, format.end_magic, kMagicBytes) != 0) {
    throw Error(StrFormat("%s:%zu: bad end magic (torn or overwritten footer)", path.c_str(),
                          footer + 4));
  }
  std::uint32_t stored_crc = ReadScalar<std::uint32_t>(bytes, footer);
  std::uint32_t actual_crc = Crc32(bytes.data(), footer);
  if (stored_crc != actual_crc) {
    throw Error(StrFormat("%s:%zu: CRC mismatch (stored 0x%08x, computed 0x%08x)",
                          path.c_str(), footer, stored_crc, actual_crc));
  }
}

}  // namespace flatnet::colstore
