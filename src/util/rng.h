// Deterministic pseudo-random generation.
//
// All stochastic pieces of flatnet (topology generation, traceroute loss,
// leak-simulation sampling) draw from this generator so that a fixed seed
// reproduces an experiment bit-for-bit. The core is xoshiro256**, seeded via
// splitmix64, which is fast, high quality, and stable across platforms
// (unlike std::mt19937 distributions, whose outputs are not portable).
#ifndef FLATNET_UTIL_RNG_H_
#define FLATNET_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace flatnet {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  std::uint64_t NextU64();

  // Uniform in [0, bound). `bound` must be > 0. Uses Lemire rejection
  // sampling so the result is unbiased.
  std::uint64_t UniformU64(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller (no state caching; two calls per draw).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Zipf-distributed rank in [1, n] with exponent `s` (> 0). Used for
  // heavy-tailed degree targets and eyeball populations. Implemented by
  // inverse-CDF over precomputed weights for modest n, rejection otherwise.
  std::uint64_t Zipf(std::uint64_t n, double s);

  // Power-law distributed continuous sample on [xmin, xmax] with exponent
  // alpha > 1 (density ~ x^-alpha).
  double PowerLaw(double xmin, double xmax, double alpha);

  // Exponential with the given mean.
  double Exponential(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformU64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Draws k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::uint32_t> SampleWithoutReplacement(std::uint32_t n, std::uint32_t k);

  // Picks an index proportionally to non-negative weights. At least one
  // weight must be positive.
  std::size_t PickWeighted(const std::vector<double>& weights);

  // Forks an independent stream; child sequences do not overlap in practice
  // because the child is re-seeded through splitmix64.
  Rng Fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace flatnet

#endif  // FLATNET_UTIL_RNG_H_
