// Small string utilities used by the parsers and report writers.
#ifndef FLATNET_UTIL_STRINGS_H_
#define FLATNET_UTIL_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace flatnet {

// Splits `s` on `sep`, keeping empty fields ("a||b" -> {"a","","b"}).
std::vector<std::string_view> Split(std::string_view s, char sep);

// Splits `s` on any run of whitespace, dropping empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// Strict unsigned/signed/double parsers: the whole string must be consumed.
std::optional<std::uint64_t> ParseU64(std::string_view s);
std::optional<std::int64_t> ParseI64(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

// Lower-cases ASCII characters.
std::string AsciiLower(std::string_view s);

// True if `s` starts with / ends with the given piece.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Formats `value` with thousands separators, e.g. 69488 -> "69,488".
std::string WithCommas(std::uint64_t value);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace flatnet

#endif  // FLATNET_UTIL_STRINGS_H_
