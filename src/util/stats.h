// Summary statistics, histograms, and empirical CDFs for report generation.
#ifndef FLATNET_UTIL_STATS_H_
#define FLATNET_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace flatnet {

// Streaming mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-width histogram over [lo, hi); samples outside are clamped into the
// first/last bin so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x, double weight = 1.0);

  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

// Empirical CDF built from a sample set; supports quantiles and evaluation
// at fixed points (used to print the paper's CDF figures as text series).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  // Fraction of samples <= x.
  double At(double x) const;

  // q in [0,1]; nearest-rank quantile.
  double Quantile(double q) const;

  std::size_t size() const { return samples_.size(); }
  double min() const;
  double max() const;

  // Renders "x=v cdf=f" rows at `points` evenly spaced x values across
  // [lo, hi], one per line, for plot-free inspection.
  std::string Render(double lo, double hi, int points) const;

 private:
  std::vector<double> samples_;  // sorted
};

// Nearest-rank quantile of an (unsorted) sample, q clamped to [0, 1]:
// rank = max(1, ceil(q * n)), value = sorted[rank - 1]. Agrees with
// EmpiricalCdf::Quantile, so every tool reporting a percentile of the
// same sample prints the same number. Returns 0.0 for an empty sample
// (callers report "no data", not a throw, on empty series).
double Quantile(std::vector<double> samples, double q);

// Pearson correlation of two equal-length series; returns 0 for degenerate
// (constant) inputs.
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace flatnet

#endif  // FLATNET_UTIL_STATS_H_
