#include "util/json.h"

#include <charconv>
#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace flatnet {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json ParseDocument() {
    Json value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw ParseError(StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(StrFormat("expected '%c'", c));
    ++pos_;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json ParseValue() {
    SkipWhitespace();
    char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return Json(ParseString());
      case 't':
        if (ConsumeLiteral("true")) return Json(true);
        Fail("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return Json(false);
        Fail("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return Json(nullptr);
        Fail("bad literal");
      default: return ParseNumber();
    }
  }

  Json ParseObject() {
    Expect('{');
    Json::Object object;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      object[std::move(key)] = ParseValue();
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(object));
      }
      Fail("expected ',' or '}' in object");
    }
  }

  Json ParseArray() {
    Expect('[');
    Json::Array array;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(ParseValue());
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(array));
      }
      Fail("expected ',' or ']' in array");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) Fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs rejected for simplicity).
          if (code >= 0xd800 && code <= 0xdfff) Fail("surrogate pairs unsupported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: Fail("unknown escape");
      }
    }
  }

  Json ParseNumber() {
    std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    auto [ptr, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      Fail("malformed number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void EscapeInto(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void DumpInto(const Json& value, int indent, int depth, std::string& out);

void Newline(int indent, int depth, std::string& out) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

void DumpNumber(double n, std::string& out) {
  if (std::floor(n) == n && std::abs(n) < 1e15) {
    out += StrFormat("%lld", static_cast<long long>(n));
  } else {
    out += StrFormat("%.17g", n);
  }
}

void DumpInto(const Json& value, int indent, int depth, std::string& out) {
  switch (value.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += value.AsBool() ? "true" : "false"; break;
    case Json::Type::kNumber: DumpNumber(value.AsNumber(), out); break;
    case Json::Type::kString: EscapeInto(value.AsString(), out); break;
    case Json::Type::kArray: {
      const auto& array = value.AsArray();
      if (array.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i) out.push_back(',');
        Newline(indent, depth + 1, out);
        DumpInto(array[i], indent, depth + 1, out);
      }
      Newline(indent, depth, out);
      out.push_back(']');
      break;
    }
    case Json::Type::kObject: {
      const auto& object = value.AsObject();
      if (object.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : object) {
        if (!first) out.push_back(',');
        first = false;
        Newline(indent, depth + 1, out);
        EscapeInto(key, out);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        DumpInto(member, indent, depth + 1, out);
      }
      Newline(indent, depth, out);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Json::Type Json::type() const {
  return static_cast<Type>(value_.index());
}

bool Json::AsBool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  throw InvalidArgument("Json: not a bool");
}

double Json::AsNumber() const {
  if (const double* n = std::get_if<double>(&value_)) return *n;
  throw InvalidArgument("Json: not a number");
}

std::uint64_t Json::AsU64() const {
  double n = AsNumber();
  if (n < 0 || std::floor(n) != n) throw InvalidArgument("Json: not a non-negative integer");
  return static_cast<std::uint64_t>(n);
}

const std::string& Json::AsString() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  throw InvalidArgument("Json: not a string");
}

const Json::Array& Json::AsArray() const {
  if (const Array* a = std::get_if<Array>(&value_)) return *a;
  throw InvalidArgument("Json: not an array");
}

const Json::Object& Json::AsObject() const {
  if (const Object* o = std::get_if<Object>(&value_)) return *o;
  throw InvalidArgument("Json: not an object");
}

void Json::Append(Json value) {
  if (Array* a = std::get_if<Array>(&value_)) {
    a->push_back(std::move(value));
    return;
  }
  throw InvalidArgument("Json::Append: not an array");
}

std::size_t Json::size() const {
  if (const Array* a = std::get_if<Array>(&value_)) return a->size();
  if (const Object* o = std::get_if<Object>(&value_)) return o->size();
  throw InvalidArgument("Json::size: not a container");
}

const Json& Json::operator[](std::size_t index) const {
  const Array& array = AsArray();
  if (index >= array.size()) throw InvalidArgument("Json: array index out of range");
  return array[index];
}

Json& Json::operator[](const std::string& key) {
  if (Object* o = std::get_if<Object>(&value_)) return (*o)[key];
  throw InvalidArgument("Json::operator[]: not an object");
}

const Json& Json::At(const std::string& key) const {
  const Object& object = AsObject();
  auto it = object.find(key);
  if (it == object.end()) throw InvalidArgument("Json::At: missing key '" + key + "'");
  return it->second;
}

const Json& Json::Get(const std::string& key) const {
  static const Json kNull;
  const Object& object = AsObject();
  auto it = object.find(key);
  return it == object.end() ? kNull : it->second;
}

bool Json::Contains(const std::string& key) const { return AsObject().contains(key); }

Json Json::Parse(std::string_view text) { return Parser(text).ParseDocument(); }

std::string Json::Dump(int indent) const {
  std::string out;
  DumpInto(*this, indent, 0, out);
  return out;
}

}  // namespace flatnet
