#include "util/crc32.h"

#include <array>

namespace flatnet {
namespace {

std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = MakeTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace flatnet
