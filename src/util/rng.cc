#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace flatnet {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextU64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformU64(std::uint64_t bound) {
  if (bound == 0) throw InvalidArgument("Rng::UniformU64: bound must be > 0");
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw InvalidArgument("Rng::UniformInt: lo > hi");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? NextU64() : UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

std::uint64_t Rng::Zipf(std::uint64_t n, double s) {
  if (n == 0) throw InvalidArgument("Rng::Zipf: n must be > 0");
  // Rejection-inversion sampling (Hormann & Derflinger) works for any n
  // without precomputing the harmonic sum.
  if (n == 1) return 1;
  const double b = std::pow(2.0, 1.0 - s);
  while (true) {
    double u = UniformDouble();
    double v = UniformDouble();
    double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (s == 1.0) x = std::floor(std::exp(u * std::log(static_cast<double>(n))));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    double t = std::pow(1.0 + 1.0 / x, s - 1.0 + 1e-12);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::uint64_t>(x);
    }
  }
}

double Rng::PowerLaw(double xmin, double xmax, double alpha) {
  if (!(xmin > 0) || !(xmax > xmin) || !(alpha > 1.0)) {
    throw InvalidArgument("Rng::PowerLaw: require 0 < xmin < xmax, alpha > 1");
  }
  // Inverse CDF of truncated Pareto.
  double u = UniformDouble();
  double a1 = 1.0 - alpha;
  double lo = std::pow(xmin, a1);
  double hi = std::pow(xmax, a1);
  return std::pow(lo + u * (hi - lo), 1.0 / a1);
}

double Rng::Exponential(double mean) {
  double u = UniformDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::vector<std::uint32_t> Rng::SampleWithoutReplacement(std::uint32_t n, std::uint32_t k) {
  if (k > n) throw InvalidArgument("Rng::SampleWithoutReplacement: k > n");
  // Partial Fisher-Yates over an index vector; O(n) space, O(n + k) time.
  std::vector<std::uint32_t> idx(n);
  for (std::uint32_t i = 0; i < n; ++i) idx[i] = i;
  for (std::uint32_t i = 0; i < k; ++i) {
    std::uint32_t j = i + static_cast<std::uint32_t>(UniformU64(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::size_t Rng::PickWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw InvalidArgument("Rng::PickWeighted: negative weight");
    total += w;
  }
  if (total <= 0.0) throw InvalidArgument("Rng::PickWeighted: all weights zero");
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // numeric edge: land on the last positive bin
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace flatnet
