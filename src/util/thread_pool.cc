#include "util/thread_pool.h"

#include <algorithm>

namespace flatnet {
namespace {

// Hot-path counters are relaxed atomics; queue_depth counts tasks from
// submission until completion (inline-executed tasks included), so a
// settled pool reads depth 0.
std::atomic<std::uint64_t> g_tasks_submitted{0};
std::atomic<std::uint64_t> g_tasks_executed{0};
std::atomic<std::int64_t> g_queue_depth{0};
std::atomic<std::int64_t> g_peak_queue_depth{0};
std::atomic<std::int64_t> g_threads{0};

void NoteSubmitted() {
  g_tasks_submitted.fetch_add(1, std::memory_order_relaxed);
  std::int64_t depth = g_queue_depth.fetch_add(1, std::memory_order_relaxed) + 1;
  std::int64_t peak = g_peak_queue_depth.load(std::memory_order_relaxed);
  while (depth > peak &&
         !g_peak_queue_depth.compare_exchange_weak(peak, depth, std::memory_order_relaxed)) {
  }
}

void NoteExecuted() {
  g_tasks_executed.fetch_add(1, std::memory_order_relaxed);
  g_queue_depth.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace

ThreadPoolStats GlobalThreadPoolStats() {
  ThreadPoolStats stats;
  stats.tasks_submitted = g_tasks_submitted.load(std::memory_order_relaxed);
  stats.tasks_executed = g_tasks_executed.load(std::memory_order_relaxed);
  stats.queue_depth = g_queue_depth.load(std::memory_order_relaxed);
  stats.peak_queue_depth = g_peak_queue_depth.load(std::memory_order_relaxed);
  stats.threads = g_threads.load(std::memory_order_relaxed);
  return stats;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // A single-thread pool would just add queue overhead; run inline instead.
  if (threads <= 1) return;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  g_threads.fetch_add(static_cast<std::int64_t>(workers_.size()), std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : workers_) t.join();
  g_threads.fetch_sub(static_cast<std::int64_t>(workers_.size()), std::memory_order_relaxed);
}

void ThreadPool::Submit(std::function<void()> task) {
  NoteSubmitted();
  if (workers_.empty()) {
    task();
    NoteExecuted();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task, std::size_t max_pending) {
  if (workers_.empty()) {
    // Inline execution completes before returning, so pending is the one
    // task being admitted right now.
    if (max_pending == 0) return false;
    NoteSubmitted();
    task();
    NoteExecuted();
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_ >= max_pending) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  NoteSubmitted();
  task_available_.notify_one();
  return true;
}

std::size_t ThreadPool::PendingTasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  std::size_t n = end - begin;
  if (workers_.empty() || n < 2) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::size_t chunks = std::min(n, workers_.size() * 4);
  std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t lo = begin + c * chunk_size;
    std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    Submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    NoteExecuted();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace flatnet
