// Minimal JSON value, parser, and writer.
//
// Used for the PeeringDB-style snapshots (data/peeringdb.h). Supports the
// full JSON grammar (objects, arrays, strings with escapes incl. \uXXXX for
// the BMP, numbers, booleans, null); numbers are stored as doubles, which
// is lossless for the 32-bit ids and ASNs the datasets carry.
#ifndef FLATNET_UTIL_JSON_H_
#define FLATNET_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace flatnet {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // std::map keeps key order deterministic for byte-stable dumps.
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double n) : value_(n) {}
  Json(int n) : value_(static_cast<double>(n)) {}
  Json(unsigned n) : value_(static_cast<double>(n)) {}
  Json(std::int64_t n) : value_(static_cast<double>(n)) {}
  Json(std::uint64_t n) : value_(static_cast<double>(n)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }

  // Checked accessors; throw InvalidArgument on type mismatch.
  bool AsBool() const;
  double AsNumber() const;
  std::uint64_t AsU64() const;  // rejects negatives and non-integers
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;

  // Array helpers.
  void Append(Json value);
  std::size_t size() const;
  const Json& operator[](std::size_t index) const;

  // Object helpers. operator[] inserts (for building); At throws on a
  // missing key; Get returns a null Json for missing keys.
  Json& operator[](const std::string& key);
  const Json& At(const std::string& key) const;
  const Json& Get(const std::string& key) const;
  bool Contains(const std::string& key) const;

  // Parses a complete JSON document (trailing garbage is an error). Throws
  // ParseError with byte offsets on malformed input.
  static Json Parse(std::string_view text);

  // Serializes. indent < 0 => compact; otherwise pretty-print with that
  // many spaces per level.
  std::string Dump(int indent = -1) const;

  friend bool operator==(const Json&, const Json&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace flatnet

#endif  // FLATNET_UTIL_JSON_H_
