// Shared scaffolding for the columnar on-disk stores.
//
// The `.sweep`, `.leak`, and `.fail` stores share one envelope: an
// 8-byte magic + u32 version header, a native-endian body, and a
// CRC-32 + 8-byte end-magic footer, published atomically via a
// pid-unique tmp file and rename. Each store family describes itself
// with a `Format` (magics, version, and the word used in error
// messages); the body layout — columns, descriptors, flags — stays in
// the owning store. Load errors always name the file and byte offset.
#ifndef FLATNET_UTIL_COLSTORE_H_
#define FLATNET_UTIL_COLSTORE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace flatnet::colstore {

// Constants of one store family. `magic`/`end_magic` are exactly 8
// bytes (not NUL-terminated); `kind` is the lowercase word used in
// error messages ("sweep store", "leak store", ...).
struct Format {
  const char* magic;
  const char* end_magic;
  std::uint32_t version;
  const char* kind;
};

// Bytes of the magic strings and of the CRC-32 + end-magic footer.
inline constexpr std::size_t kMagicBytes = 8;
inline constexpr std::size_t kFooterBytes = 4 + kMagicBytes;

// Raw byte append.
void Append(std::string& out, const void* data, std::size_t len);

template <typename T>
void AppendScalar(std::string& out, T value) {
  Append(out, &value, sizeof(value));
}

// The byte views accept either a slurped std::string or a memory-mapped
// region (string_view over the mapping) — validation is copy-free either
// way.
template <typename T>
T ReadScalar(std::string_view bytes, std::size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(value));
  return value;
}

// Writes the 12-byte prologue shared by every store: magic + version.
void AppendMagicAndVersion(std::string& out, const Format& format);

// Appends the CRC-32 of everything serialized so far plus the end
// magic. Call last.
void AppendFooter(std::string& out, const Format& format);

// Publishes `bytes` at `path` via a pid-unique tmp file and atomic
// rename. `op` names the calling writer in errors ("WriteSweepStore").
void AtomicWriteFile(const std::string& path, const std::string& bytes, const char* op);

// Slurps the whole file; `label` prefixes open/read errors
// ("SweepStore").
std::string ReadFileBytes(const std::string& path, const char* label);

// Validates the size floor (header + footer), the magic, and the
// version. `min_bytes` is the store's fixed header size plus
// kFooterBytes. Callers run their own body checks afterwards so a
// corrupted field names itself before the CRC fires.
void CheckHeader(const std::string& path, std::string_view bytes, const Format& format,
                 std::size_t min_bytes);

// Validates the end magic and the CRC-32 over everything before the
// footer. Call after the body-shape checks.
void CheckFooter(const std::string& path, std::string_view bytes, const Format& format);

}  // namespace flatnet::colstore

#endif  // FLATNET_UTIL_COLSTORE_H_
