#include "util/env.h"

#include <cmath>
#include <cstdlib>

#include "util/strings.h"

namespace flatnet {

std::optional<std::string> GetEnv(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return std::nullopt;
  return std::string(value);
}

const ScaleConfig& GetScaleConfig() {
  static const ScaleConfig config = [] {
    ScaleConfig c;
    auto env = GetEnv("FLATNET_SCALE");
    if (!env) return c;
    std::string v = AsciiLower(*env);
    if (v == "full" || v == "paper") {
      c.topology_fraction = 1.0;
      c.trial_fraction = 1.0;
      c.source = "FLATNET_SCALE=" + v;
    } else if (auto mult = ParseDouble(v); mult && *mult > 0) {
      c.topology_fraction *= *mult;
      c.trial_fraction *= *mult;
      c.source = "FLATNET_SCALE=" + v;
    }
    return c;
  }();
  return config;
}

std::uint32_t ScaledCount(std::uint32_t paper_count, std::uint32_t floor) {
  double scaled = std::round(paper_count * GetScaleConfig().topology_fraction);
  return std::max(floor, static_cast<std::uint32_t>(scaled));
}

std::uint32_t ScaledTrials(std::uint32_t paper_trials, std::uint32_t floor) {
  double scaled = std::round(paper_trials * GetScaleConfig().trial_fraction);
  return std::max(floor, static_cast<std::uint32_t>(scaled));
}

}  // namespace flatnet
