// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//
// Guards the binary sweep store and its checkpoint journal against
// truncation and bit rot. The incremental form (`seed` is a previous
// return value) lets writers fold a file in as it streams out.
#ifndef FLATNET_UTIL_CRC32_H_
#define FLATNET_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace flatnet {

// CRC of `len` bytes at `data`. Chain calls by passing the previous
// result as `seed` (the empty-input CRC is 0).
std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace flatnet

#endif  // FLATNET_UTIL_CRC32_H_
