// Fixed-width ASCII table writer for the experiment reports. The benches
// print the paper's tables as text; this keeps column alignment consistent.
#ifndef FLATNET_UTIL_TABLE_H_
#define FLATNET_UTIL_TABLE_H_

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace flatnet {

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  // Declares a column. Width grows automatically to fit cell contents.
  void AddColumn(std::string header, Align align = Align::kLeft);

  // Appends a row; cell count must equal the column count.
  void AddRow(std::vector<std::string> cells);

  // Appends a horizontal separator row.
  void AddSeparator();

  void Print(std::ostream& os) const;
  // stdio convenience for the printf-based report binaries.
  void Print(std::FILE* file) const;
  std::string ToString() const;

 private:
  struct Column {
    std::string header;
    Align align;
  };
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<Column> columns_;
  std::vector<Row> rows_;
};

}  // namespace flatnet

#endif  // FLATNET_UTIL_TABLE_H_
