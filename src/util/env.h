// Experiment scale configuration.
//
// The paper's topologies have ~52k (2015) and ~70k (2020) ASes. A full
// per-AS reachability sweep over 70k origins is minutes of CPU; benches run
// in CI-sized containers, so the default scale shrinks the synthetic
// Internet while preserving its structural ratios. Set FLATNET_SCALE=full
// (or =paper) to run at paper-scale counts, or FLATNET_SCALE=<float> for a
// custom multiplier of the default.
#ifndef FLATNET_UTIL_ENV_H_
#define FLATNET_UTIL_ENV_H_

#include <cstdint>
#include <optional>
#include <string>

namespace flatnet {

struct ScaleConfig {
  // Multiplier applied to AS counts relative to the paper (1.0 == paper
  // scale, i.e. ~70k ASes in the 2020 era).
  double topology_fraction = 0.18;
  // Multiplier applied to simulation counts (e.g. the paper's 5000 leak
  // trials per configuration).
  double trial_fraction = 0.10;
  // Human-readable origin of the setting, for bench headers.
  std::string source = "default";
};

// Reads FLATNET_SCALE once per process (first call wins).
const ScaleConfig& GetScaleConfig();

// Convenience: rounds `paper_count * topology_fraction`, minimum `floor`.
std::uint32_t ScaledCount(std::uint32_t paper_count, std::uint32_t floor = 1);

// Convenience: rounds `paper_trials * trial_fraction`, minimum `floor`.
std::uint32_t ScaledTrials(std::uint32_t paper_trials, std::uint32_t floor = 1);

// Reads an environment variable, if set and non-empty.
std::optional<std::string> GetEnv(const std::string& name);

}  // namespace flatnet

#endif  // FLATNET_UTIL_ENV_H_
