#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace flatnet {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::optional<std::uint64_t> ParseU64(std::string_view s) {
  std::uint64_t value = 0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  return value;
}

std::optional<std::int64_t> ParseI64(std::string_view s) {
  std::int64_t value = 0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  // std::from_chars<double> is available in libstdc++ 11+.
  double value = 0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  return value;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string WithCommas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace flatnet
