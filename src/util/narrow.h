// Checked integer narrowing.
//
// The graph core stores counts and CSR offsets in 32 bits to halve the
// memory footprint, which is safe only while the counts actually fit. A
// silent `static_cast` turns an overflowing count into a wrong-but-legal
// value that corrupts adjacency without a diagnostic; CheckedNarrow fails
// loudly instead, naming the caller and the offending count so the error
// surfaces at the insertion site rather than as a miscomputed result.
#ifndef FLATNET_UTIL_NARROW_H_
#define FLATNET_UTIL_NARROW_H_

#include <cstdint>
#include <limits>
#include <type_traits>

#include "util/error.h"
#include "util/strings.h"

namespace flatnet {

// Returns `value` as a `To`, throwing Error when it does not fit. `what`
// names the quantity in the error ("AsGraphBuilder edge index", ...).
template <typename To, typename From>
To CheckedNarrow(From value, const char* what) {
  static_assert(std::is_unsigned_v<To> && std::is_unsigned_v<From>,
                "CheckedNarrow handles unsigned counts and offsets only");
  if (value > static_cast<From>(std::numeric_limits<To>::max())) {
    throw Error(StrFormat("%s: count %llu exceeds the %zu-bit limit %llu", what,
                          static_cast<unsigned long long>(value), sizeof(To) * 8,
                          static_cast<unsigned long long>(std::numeric_limits<To>::max())));
  }
  return static_cast<To>(value);
}

// The common case in the CSR code: a size_t count stored as u32.
template <typename From>
std::uint32_t CheckedNarrow32(From value, const char* what) {
  return CheckedNarrow<std::uint32_t>(value, what);
}

}  // namespace flatnet

#endif  // FLATNET_UTIL_NARROW_H_
