// Read-only memory-mapped files.
//
// The binary topology store serves its CSR columns straight from the page
// cache: MappedFile wraps open + fstat + mmap(PROT_READ) and hands out a
// byte span valid for the lifetime of the object. Loaders keep the
// MappedFile alive (shared_ptr) behind the spans they vend.
#ifndef FLATNET_UTIL_MMAP_FILE_H_
#define FLATNET_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <span>
#include <string>

namespace flatnet {

class MappedFile {
 public:
  // Maps `path` read-only. Throws Error naming the file on open/map
  // failure; `label` prefixes the message ("LoadInternetBinary").
  MappedFile(const std::string& path, const char* label);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::string& path() const { return path_; }
  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }
  const char* data() const { return static_cast<const char*>(data_); }
  std::size_t size() const { return size_; }

 private:
  std::string path_;
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace flatnet

#endif  // FLATNET_UTIL_MMAP_FILE_H_
