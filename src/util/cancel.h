// Cooperative cancellation for long-running computations.
//
// A CancelToken combines a manual kill switch (shutdown drains) with an
// optional deadline (per-request latency budgets). Workers poll Expired()
// at natural checkpoints — the propagation engine checks between its three
// phases — and abandon the computation by throwing CancelledError, so a
// token never preempts a tight inner loop and costs one relaxed load plus
// at most one clock read per poll.
#ifndef FLATNET_UTIL_CANCEL_H_
#define FLATNET_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>

#include "util/error.h"

namespace flatnet {

class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  static CancelToken AfterMillis(std::int64_t millis) {
    return CancelToken(std::chrono::steady_clock::now() + std::chrono::milliseconds(millis));
  }

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  // Throws CancelledError when expired; `what` names the abandoned work.
  void ThrowIfExpired(const char* what) const {
    if (Expired()) throw CancelledError(what);
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

// Polls a token that may be absent (the common library-internal case).
inline void ThrowIfCancelled(const CancelToken* token, const char* what) {
  if (token != nullptr) token->ThrowIfExpired(what);
}

}  // namespace flatnet

#endif  // FLATNET_UTIL_CANCEL_H_
