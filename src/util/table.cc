#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace flatnet {

void TextTable::AddColumn(std::string header, Align align) {
  columns_.push_back(Column{std::move(header), align});
}

void TextTable::AddRow(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw InvalidArgument("TextTable::AddRow: cell count does not match column count");
  }
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::AddSeparator() { rows_.push_back(Row{true, {}}); }

void TextTable::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].header.size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto print_cell = [&](const std::string& text, std::size_t c) {
    std::size_t pad = widths[c] - text.size();
    if (columns_[c].align == Align::kRight) {
      os << std::string(pad, ' ') << text;
    } else {
      os << text << std::string(pad, ' ');
    }
  };
  auto print_rule = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(widths[c], '-');
    }
    os << "-+\n";
  };

  print_rule();
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "| " : " | ");
    print_cell(columns_[c].header, c);
  }
  os << " |\n";
  print_rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_rule();
      continue;
    }
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      print_cell(row.cells[c], c);
    }
    os << " |\n";
  }
  print_rule();
}

void TextTable::Print(std::FILE* file) const {
  std::string rendered = ToString();
  std::fputs(rendered.c_str(), file);
}

std::string TextTable::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace flatnet
