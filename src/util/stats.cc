#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"
#include "util/strings.h"

namespace flatnet {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo) || bins == 0) throw InvalidArgument("Histogram: bad range or bin count");
  counts_.assign(bins, 0.0);
}

void Histogram::Add(double x, double weight) {
  double t = (x - lo_) / (hi_ - lo_);
  auto bins = static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>(std::floor(t * bins));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : samples_(std::move(samples)) {
  if (samples_.empty()) throw InvalidArgument("EmpiricalCdf: empty sample set");
  std::sort(samples_.begin(), samples_.end());
}

double EmpiricalCdf::At(double x) const {
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

double EmpiricalCdf::min() const { return samples_.front(); }
double EmpiricalCdf::max() const { return samples_.back(); }

std::string EmpiricalCdf::Render(double lo, double hi, int points) const {
  std::string out;
  for (int i = 0; i < points; ++i) {
    double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out += StrFormat("  x=%8.3f  cdf=%.4f\n", x, At(x));
  }
  return out;
}

double Quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples.size())));
  if (rank == 0) rank = 1;
  return samples[rank - 1];
}

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw InvalidArgument("PearsonCorrelation: size mismatch");
  std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(n);
  double my = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

std::vector<double> AverageRanks(const std::vector<double>& v) {
  std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw InvalidArgument("SpearmanCorrelation: size mismatch");
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(x), AverageRanks(y));
}

}  // namespace flatnet
