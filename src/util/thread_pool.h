// Minimal work-stealing-free thread pool with a parallel_for helper.
//
// Full-Internet sweeps (hierarchy-free reachability for every AS) are
// embarrassingly parallel over origins; the pool sizes itself to the
// hardware and degrades gracefully to inline execution on 1-core hosts.
#ifndef FLATNET_UTIL_THREAD_POOL_H_
#define FLATNET_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace flatnet {

// Process-wide instrumentation aggregated across every live pool (plain
// atomics here; obs/metrics.h folds these into its registry at snapshot
// time, keeping util free of an obs dependency).
struct ThreadPoolStats {
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_executed = 0;
  std::int64_t queue_depth = 0;       // tasks submitted but not yet finished
  std::int64_t peak_queue_depth = 0;  // high-water mark of queue_depth
  std::int64_t threads = 0;           // workers across live pools
};

ThreadPoolStats GlobalThreadPoolStats();

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Enqueues a task; tasks must not throw (std::terminate otherwise).
  void Submit(std::function<void()> task);

  // Bounded admission: enqueues only when fewer than `max_pending` tasks
  // are submitted-but-unfinished, returning false (task untouched) past the
  // bound. With no workers the accepted task runs inline, so the bound
  // still caps how much work one call admits. Services use this as a
  // load-shedding high-water mark instead of queueing without limit.
  [[nodiscard]] bool TrySubmit(std::function<void()> task, std::size_t max_pending);

  // Tasks submitted to this pool and not yet finished (running included).
  std::size_t PendingTasks() const;

  // Blocks until every submitted task has finished.
  void Wait();

  // Runs fn(i) for i in [begin, end), partitioned into contiguous chunks
  // across the pool, and blocks until complete. Runs inline when the pool
  // has no workers or the range is tiny.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace flatnet

#endif  // FLATNET_UTIL_THREAD_POOL_H_
