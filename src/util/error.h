// Exception hierarchy for flatnet.
//
// The library reports unrecoverable misuse (bad arguments, malformed input
// data) with exceptions; expected runtime conditions (lookup misses, empty
// results) use std::optional or empty containers instead.
#ifndef FLATNET_UTIL_ERROR_H_
#define FLATNET_UTIL_ERROR_H_

#include <stdexcept>
#include <string>

namespace flatnet {

// Base class for all errors thrown by flatnet.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Malformed external input: a CAIDA file line that does not parse, an IP
// address string with bad syntax, etc.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

// API misuse: out-of-range AS id, inconsistent arguments, operations on a
// graph that has not been finalized.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// A cooperative cancellation (deadline or shutdown drain) interrupted a
// computation partway; any partial result is meaningless. Thrown by code
// polling a util/cancel.h CancelToken.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

}  // namespace flatnet

#endif  // FLATNET_UTIL_ERROR_H_
