#include "util/bitset.h"

namespace flatnet {

Bitset::Bitset(std::size_t size, bool value) { Resize(size, value); }

void Bitset::Resize(std::size_t size, bool value) {
  size_ = size;
  words_.assign((size + 63) / 64, value ? ~std::uint64_t{0} : 0);
  if (value) ClearTail();
}

void Bitset::SetAll() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  ClearTail();
}

void Bitset::ResetAll() {
  for (auto& w : words_) w = 0;
}

void Bitset::ClearTail() {
  std::size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

std::size_t Bitset::Count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
  return total;
}

bool Bitset::Any() const {
  for (std::uint64_t w : words_) {
    if (w) return true;
  }
  return false;
}

void Bitset::StoreWord(std::size_t w, std::uint64_t bits) {
  assert(w < words_.size() && "Bitset::StoreWord: index out of range");
  words_[w] = bits;
  if (w + 1 == words_.size()) ClearTail();
}

Bitset& Bitset::operator|=(const Bitset& other) {
  assert(size_ == other.size_ && "Bitset: size mismatch in |=");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  assert(size_ == other.size_ && "Bitset: size mismatch in &=");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::operator-=(const Bitset& other) {
  assert(size_ == other.size_ && "Bitset: size mismatch in -=");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

Bitset Bitset::operator~() const {
  Bitset out(*this);
  for (auto& w : out.words_) w = ~w;
  out.ClearTail();
  return out;
}

bool Bitset::operator==(const Bitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  assert(size_ == other.size_ && "Bitset: size mismatch in IsSubsetOf");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

std::size_t Bitset::CountAnd(const Bitset& other) const {
  assert(size_ == other.size_ && "Bitset: size mismatch in CountAnd");
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(__builtin_popcountll(words_[i] & other.words_[i]));
  }
  return total;
}

std::size_t Bitset::OrCountNew(const Bitset& other) {
  assert(size_ == other.size_ && "Bitset: size mismatch in OrCountNew");
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t fresh = other.words_[i] & ~words_[i];
    words_[i] |= other.words_[i];
    total += static_cast<std::size_t>(__builtin_popcountll(fresh));
  }
  return total;
}

std::size_t Bitset::AndNotCount(const Bitset& other) const {
  assert(size_ == other.size_ && "Bitset: size mismatch in AndNotCount");
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(__builtin_popcountll(words_[i] & ~other.words_[i]));
  }
  return total;
}

}  // namespace flatnet
