// cloud_study: the paper's full §4-§6 pipeline on a small synthetic
// Internet — generate ground truth, measure from cloud VMs, infer
// neighbors, merge with the BGP view, and compare each cloud's
// hierarchy-free reachability on the measured topology against the
// (normally unknowable) ground truth.
#include <cstdio>

#include "core/reachability_analysis.h"
#include "core/study.h"
#include "measure/validation.h"
#include "util/table.h"
#include "util/strings.h"

using namespace flatnet;

int main() {
  StudyOptions options;
  options.generator = GeneratorParams::Era2020(4000);  // small demo Internet
  options.campaign.seed = 7;

  std::printf("building study: generating %u-AS world, measuring from cloud VMs...\n",
              options.generator.total_ases);
  Study study(options);
  std::printf("traceroutes collected: %zu\n\n", study.campaign().traces().size());

  TextTable table;
  table.AddColumn("cloud");
  table.AddColumn("peers (BGP)", TextTable::Align::kRight);
  table.AddColumn("peers (merged)", TextTable::Align::kRight);
  table.AddColumn("peers (truth)", TextTable::Align::kRight);
  table.AddColumn("FDR", TextTable::Align::kRight);
  table.AddColumn("FNR", TextTable::Align::kRight);
  table.AddColumn("HF reach (merged)", TextTable::Align::kRight);
  table.AddColumn("HF reach (truth)", TextTable::Align::kRight);

  for (std::uint32_t c = 0; c < study.world().clouds.size(); ++c) {
    const CloudInstance& cloud = study.world().clouds[c];
    if (!cloud.archetype.is_study_cloud || cloud.archetype.vm_locations == 0) continue;
    auto truth_neighbors = TrueNeighborAsns(study.world().full_graph, cloud.id);
    ValidationStats stats = ValidateNeighbors(study.inferred_neighbors()[c], truth_neighbors);
    ReachabilitySummary merged = AnalyzeReachability(study.internet(), cloud.id);
    ReachabilitySummary truth = AnalyzeReachability(study.truth(), cloud.id);
    table.AddRow({cloud.archetype.name,
                  std::to_string(study.world().bgp_graph.PeerCount(cloud.id)),
                  std::to_string(study.internet().graph().PeerCount(cloud.id)),
                  std::to_string(study.world().full_graph.PeerCount(cloud.id)),
                  StrFormat("%.0f%%", 100 * stats.Fdr()), StrFormat("%.0f%%", 100 * stats.Fnr()),
                  WithCommas(merged.hierarchy_free), WithCommas(truth.hierarchy_free)});
  }
  table.Print(stdout);
  std::printf(
      "\nThe BGP view alone misses most cloud peering; traceroute augmentation recovers\n"
      "enough of it that hierarchy-free reachability on the measured topology\n"
      "approaches the ground truth (the residual gap is the ~20%% false-negative rate\n"
      "the paper reports in §5).\n");
  return 0;
}
