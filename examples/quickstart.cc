// Quickstart: build a topology, compute the paper's headline metric.
//
// Demonstrates the three core steps of the public API:
//   1. obtain an AS-level topology (here: parse a CAIDA-format snippet —
//      point LoadCaidaFile at a real serial-1/serial-2 file to analyze the
//      actual Internet),
//   2. identify the Tier-1/Tier-2 hierarchy,
//   3. compute provider-free / Tier-1-free / hierarchy-free reachability.
#include <cstdio>

#include "asgraph/caida.h"
#include "asgraph/tiers.h"
#include "core/internet.h"
#include "core/reachability_analysis.h"

using namespace flatnet;

int main() {
  // A toy Internet in CAIDA AS-relationship format: "<a>|<b>|-1" means a is
  // b's transit provider; "<a>|<b>|0" is settlement-free peering.
  const char* kTopology =
      "# tier-1 clique: 10, 20\n"
      "10|20|0\n"
      // 30 is a Tier-2 buying from 10; 40 is a cloud-like edge AS.
      "10|30|-1\n"
      "20|30|0\n"
      "10|40|-1\n"
      // the cloud peers with two access networks and the Tier-2
      "40|50|0\n"
      "40|60|0\n"
      "40|30|0\n"
      // access networks buy transit from the Tier-2
      "30|50|-1\n"
      "30|60|-1\n"
      "30|70|-1\n";

  AsGraph graph = ParseCaidaRelationships(kTopology);
  std::printf("parsed %zu ASes, %zu relationships\n", graph.num_ases(), graph.num_edges());

  // Tier sets can be inferred from structure or given explicitly (the paper
  // uses ProbLink's lists).
  TierSets tiers = MakeTierSets(graph, /*tier1_asns=*/{10, 20}, /*tier2_asns=*/{30});

  AsMetadata metadata(graph.num_ases());
  Internet internet(std::move(graph), std::move(tiers), std::move(metadata));

  AsId cloud = *internet.graph().IdOf(40);
  ReachabilitySummary reach = AnalyzeReachability(internet, cloud);
  std::printf("AS40 provider-free reachability:  %zu ASes\n", reach.provider_free);
  std::printf("AS40 Tier-1-free reachability:    %zu ASes\n", reach.tier1_free);
  std::printf("AS40 hierarchy-free reachability: %zu ASes\n", reach.hierarchy_free);
  std::printf("\nAS40 reaches %zu ASes without touching its provider or the Tier-1/Tier-2\n"
              "hierarchy: its peering links to AS50 and AS60 survive every exclusion.\n",
              reach.hierarchy_free);
  return 0;
}
