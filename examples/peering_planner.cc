// peering_planner: what-if analysis for a cloud's peering strategy — the
// forward-looking question the paper's conclusions raise ("the potential to
// bypass the Tier-1 and Tier-2 ISPs... driving further changes").
//
// Starting from Amazon's (relatively peer-poor) position, greedily adds
// peering sessions with candidate transit networks and reports the
// hierarchy-free reachability gained per session — a marginal-value curve
// for an interconnection budget.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "asgraph/cone.h"
#include "bgp/reachability.h"
#include "core/internet.h"
#include "topogen/generate.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  GeneratorParams params = GeneratorParams::Era2020(4000);
  World world = GenerateWorld(params);
  const AsGraph& graph = world.full_graph;
  AsId amazon = world.Cloud("Amazon").id;

  Bitset hierarchy = world.tiers.HierarchyMask();
  Bitset exclusion = hierarchy;
  for (const Neighbor& nb : graph.Providers(amazon)) exclusion.Set(nb.id);
  exclusion.Reset(amazon);

  ReachabilityEngine engine(graph);
  Bitset reached = engine.Compute(amazon, &exclusion);
  std::printf("Amazon today: %zu peers, hierarchy-free reach %zu / %zu ASes\n\n",
              graph.PeerCount(amazon), reached.Count() - 1, world.num_ases() - 1);

  // Candidates: non-hierarchy transit networks Amazon does not peer with,
  // ranked by how many currently-unreached ASes their customer cone covers.
  struct Candidate {
    AsId id;
    std::size_t gain;
  };
  std::vector<Candidate> candidates;
  for (AsId id = 0; id < world.num_ases(); ++id) {
    if (id == amazon || hierarchy.Test(id)) continue;
    if (graph.CustomerCount(id) == 0) continue;  // no cone to unlock
    if (graph.RelationshipBetween(amazon, id).has_value()) continue;
    Bitset cone = CustomerCone(graph, id);
    cone -= reached;
    cone &= ~exclusion;  // excluded hierarchy nodes do not count as gain
    std::size_t gain = cone.Count();
    if (gain > 0) candidates.push_back({id, gain});
  }

  TextTable table;
  table.AddColumn("#", TextTable::Align::kRight);
  table.AddColumn("peer with");
  table.AddColumn("new ASes", TextTable::Align::kRight);
  table.AddColumn("cumulative reach", TextTable::Align::kRight);
  table.AddColumn("% of Internet", TextTable::Align::kRight);

  // Greedy marginal-gain selection, re-evaluated after each pick.
  std::size_t cumulative = reached.Count() - 1;
  for (int round = 1; round <= 10 && !candidates.empty(); ++round) {
    for (Candidate& candidate : candidates) {
      Bitset cone = CustomerCone(graph, candidate.id);
      cone -= reached;
      cone &= ~exclusion;
      candidate.gain = cone.Count() + 1 - (reached.Test(candidate.id) ? 1 : 0);
    }
    auto best = std::max_element(
        candidates.begin(), candidates.end(),
        [](const Candidate& a, const Candidate& b) { return a.gain < b.gain; });
    if (best->gain == 0) break;

    Bitset cone = CustomerCone(graph, best->id);
    cone &= ~exclusion;
    reached |= cone;
    cumulative = reached.Count() - 1;
    std::string name = world.metadata.Get(best->id).name;
    table.AddRow({std::to_string(round), name.empty() ? StrFormat("AS%u", graph.AsnOf(best->id))
                                                      : name,
                  WithCommas(best->gain), WithCommas(cumulative),
                  StrFormat("%.1f%%", 100.0 * cumulative / (world.num_ases() - 1))});
    candidates.erase(best);
  }
  table.Print(stdout);
  std::printf(
      "\nThe curve flattens fast: a handful of well-chosen transit peers buys most of\n"
      "the reachable Internet — the economics behind the flattening the paper measures.\n");
  return 0;
}
