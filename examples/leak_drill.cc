// leak_drill: a network operator's what-if tool for route-leak exposure.
//
// Given a topology and a victim network, simulates leaks from random
// misconfigured ASes and reports how much of the Internet is detoured under
// each defensive posture (announcement scope, peer-locking deployment) —
// the §8 analysis packaged as a drill.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/leak_scenarios.h"
#include "core/study.h"
#include "topogen/generate.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main(int argc, char** argv) {
  // Usage: leak_drill [victim-name] — defaults to Google.
  std::string victim_name = argc > 1 ? argv[1] : "Google";

  GeneratorParams params = GeneratorParams::Era2020(4000);
  World world = GenerateWorld(params);
  Internet internet(world.full_graph, world.tiers, world.metadata);

  AsId victim = kInvalidAsId;
  for (AsId id = 0; id < internet.num_ases(); ++id) {
    if (internet.NameOf(id) == victim_name) victim = id;
  }
  if (victim == kInvalidAsId) {
    std::fprintf(stderr, "unknown network '%s' (try Google, Amazon, Level 3, ...)\n",
                 victim_name.c_str());
    return 1;
  }

  constexpr std::size_t kTrials = 250;
  std::printf("leak drill for %s: %zu random leakers per posture\n\n", victim_name.c_str(),
              kTrials);

  TextTable table;
  table.AddColumn("defensive posture");
  table.AddColumn("mean detoured", TextTable::Align::kRight);
  table.AddColumn("worst case", TextTable::Align::kRight);
  for (LeakScenario scenario :
       {LeakScenario::kAnnounceAll, LeakScenario::kAnnounceAllLockT1,
        LeakScenario::kAnnounceAllLockT1T2, LeakScenario::kAnnounceAllLockGlobal,
        LeakScenario::kAnnounceHierarchyOnly}) {
    LeakTrialSeries series = RunLeakScenario(internet, victim, scenario, kTrials, 0xd711);
    const auto& f = series.fraction_ases_detoured;
    double mean = f.empty() ? 0 : std::accumulate(f.begin(), f.end(), 0.0) / f.size();
    double worst = f.empty() ? 0 : *std::max_element(f.begin(), f.end());
    table.AddRow({ToString(scenario), StrFormat("%5.1f%%", 100 * mean),
                  StrFormat("%5.1f%%", 100 * worst)});
  }
  table.Print(stdout);
  std::printf(
      "\nReading the drill: peer-locking at the Tier-1/Tier-2 neighbors bounds even the\n"
      "worst leak; announcing only to the hierarchy is the most exposed posture because\n"
      "leaked customer routes out-prefer your peer announcements everywhere.\n");
  return 0;
}
