// retrospective: re-analyzing a stored measurement campaign, the way §6.5
// reuses the 2015 traceroute dataset from prior work.
//
// Builds a world, runs a campaign, then ships the *artifacts* — a
// traceroute dump and a PeeringDB snapshot — through files and re-runs the
// neighbor-inference pipeline purely from the stored data, verifying the
// conclusions survive the round trip.
#include <cstdio>
#include <filesystem>

#include "core/study.h"
#include "data/peeringdb.h"
#include "measure/trace_io.h"
#include "measure/validation.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  StudyOptions options;
  options.generator = GeneratorParams::Era2020(3000);
  options.generator.seed = 2015;
  Study study(options);

  auto dir = std::filesystem::temp_directory_path() / "flatnet_retrospective";
  std::filesystem::create_directories(dir);
  std::string trace_path = (dir / "campaign.traces").string();
  std::string pdb_path = (dir / "peeringdb.json").string();

  // Archive the campaign and the registry snapshot.
  SaveTraceroutes(study.campaign().traces(), study.world().full_graph, trace_path);
  PeeringDbSnapshot snapshot =
      PeeringDbSnapshot::FromWorld(study.world(), study.plan(), 0.9, 42);
  {
    std::string text = snapshot.Dump();
    FILE* f = std::fopen(pdb_path.c_str(), "w");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  std::printf("archived %zu traceroutes to %s\n", study.campaign().traces().size(),
              trace_path.c_str());
  std::printf("archived PeeringDB snapshot (%zu nets, %zu ports) to %s\n",
              snapshot.nets().size(), snapshot.netixlans().size(), pdb_path.c_str());

  // Years later: reload and re-run inference from the files alone.
  std::vector<Traceroute> reloaded =
      LoadTraceroutes(trace_path, study.world().full_graph);
  std::printf("\nreloaded %zu traceroutes; re-running neighbor inference...\n",
              reloaded.size());

  TextTable table;
  table.AddColumn("cloud");
  table.AddColumn("inferred (live)", TextTable::Align::kRight);
  table.AddColumn("inferred (archived)", TextTable::Align::kRight);
  table.AddColumn("identical", TextTable::Align::kRight);
  InferenceRules rules = InferenceRules::ForStage(MethodologyStage::kV3Final);
  for (std::uint32_t c = 0; c < study.world().clouds.size(); ++c) {
    const CloudInstance& cloud = study.world().clouds[c];
    if (cloud.archetype.vm_locations == 0) continue;
    auto live = study.inference().InferNeighbors(study.campaign().traces(), c,
                                                 cloud.archetype.asn,
                                                 cloud.archetype.vm_locations, rules);
    auto archived = study.inference().InferNeighbors(reloaded, c, cloud.archetype.asn,
                                                     cloud.archetype.vm_locations, rules);
    table.AddRow({cloud.archetype.name, std::to_string(live.size()),
                  std::to_string(archived.size()), live == archived ? "yes" : "NO"});
  }
  table.Print(stdout);
  std::printf(
      "\nThe archived dataset reproduces the live inference bit-for-bit — the property\n"
      "§6.5 depends on when it re-analyzes the 2015 traceroutes with 2020 methodology.\n");
  return 0;
}
