// flatnet_diffcheck: differential fuzzing of the BGP kernels.
//
// Generates randomized small/medium topologies from the topogen archetypes
// (seeded, fully reproducible) and cross-checks the three propagation
// implementations — RouteComputation, ReachabilityEngine, EventBgpEngine —
// plus the structural invariants from src/check, over randomized origin /
// excluded-set / peer-lock configurations. Any divergence is logged as a
// minimized reproducer (generator seed + case parameters + first
// mismatching AS) and the process exits nonzero. CI runs a bounded budget
// of cases under ASan/UBSan; the full default sweep is the standing
// regression gate for kernel refactors.
//
// Usage:
//   flatnet_diffcheck [--cases N] [--seed S] [--min-ases A] [--max-ases B]
//                     [--per-topology K] [--era 2020|2015|both]
//                     [--log-level L] [--metrics-out <file>]
//   flatnet_diffcheck
//       --repro <era>:<topo-seed>:<ases>:<case-seed>:<excluded>:<lock>:<locked>:<senders>
//   flatnet_diffcheck --graph-identity <file.graph>
//
// The --repro string is printed verbatim when a case fails; feeding it back
// replays exactly that topology and configuration.
//
// --graph-identity memory-maps a binary topology store, re-feeds its edge
// list through AsGraphBuilder, and compares every CSR column bit for bit —
// the proof that a graph served from disk is indistinguishable from one
// built in memory.
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "check/diff.h"
#include "core/graph_store.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "topogen/generate.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/strings.h"

using namespace flatnet;

namespace {

// Registered once, eagerly: the metrics snapshot reports both counters
// even on an all-clean run.
struct DiffcheckCounters {
  obs::Counter& cases = obs::GetCounter("diffcheck.cases");
  obs::Counter& mismatches = obs::GetCounter("diffcheck.mismatches");
};

DiffcheckCounters& Counters() {
  static DiffcheckCounters counters;
  return counters;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: flatnet_diffcheck [--cases N] [--seed S] [--min-ases A] [--max-ases B]\n"
      "                         [--per-topology K] [--era 2020|2015|both]\n"
      "                         [--log-level trace|debug|info|warn|error|off]\n"
      "                         [--metrics-out <file>]\n"
      "       flatnet_diffcheck --repro "
      "<era>:<topo-seed>:<ases>:<case-seed>:<excluded>:<lock>:<locked>:<senders>\n"
      "       flatnet_diffcheck --graph-identity <file.graph>\n");
  return 2;
}

template <typename T>
bool ColumnsEqual(const char* name, std::span<const T> mapped, std::span<const T> built) {
  if (mapped.size() == built.size() &&
      std::equal(mapped.begin(), mapped.end(), built.begin())) {
    return true;
  }
  std::size_t at = 0;
  std::size_t common = std::min(mapped.size(), built.size());
  while (at < common && mapped[at] == built[at]) ++at;
  std::printf("MISMATCH column %s: sizes %zu vs %zu, first divergence at index %zu\n", name,
              mapped.size(), built.size(), at);
  return false;
}

int RunGraphIdentity(const std::string& path) {
  Internet internet = LoadInternetBinary(path);
  const AsGraph& mapped = internet.graph();
  AsGraphBuilder builder;
  for (AsId id = 0; id < mapped.num_ases(); ++id) builder.AddAs(mapped.AsnOf(id));
  for (const AsGraph::Edge& edge : mapped.EdgeList()) {
    builder.AddEdge(edge.a, edge.b, edge.type);
  }
  AsGraph built = std::move(builder).Build();

  bool ok = ColumnsEqual("asn_of", mapped.AsnColumn(), built.AsnColumn());
  ok &= ColumnsEqual("by_asn", mapped.ByAsnColumn(), built.ByAsnColumn());
  ok &= ColumnsEqual("slice", mapped.SliceColumn(), built.SliceColumn());
  ok &= ColumnsEqual("entry_ids", mapped.EntryIdsColumn(), built.EntryIdsColumn());
  if (ok) {
    std::printf("OK: %s (%zu ASes, %zu edges) is bit-identical to the builder-built graph\n",
                path.c_str(), mapped.num_ases(), mapped.num_edges());
  }
  return ok ? 0 : 1;
}

struct TopologyKey {
  bool era2020 = true;
  std::uint64_t topo_seed = 0;
  std::uint32_t ases = 0;
};

std::string ReproString(const TopologyKey& topo, const check::DiffCaseConfig& config) {
  return StrFormat("%s:%llu:%u:%llu:%zu:%s:%zu:%zu", topo.era2020 ? "2020" : "2015",
                   static_cast<unsigned long long>(topo.topo_seed), topo.ases,
                   static_cast<unsigned long long>(config.case_seed), config.excluded_count,
                   check::ToString(config.lock), config.locked_count,
                   config.filtered_sender_count);
}

World BuildWorld(const TopologyKey& topo) {
  GeneratorParams params =
      topo.era2020 ? GeneratorParams::Era2020(topo.ases) : GeneratorParams::Era2015(topo.ases);
  params.seed = topo.topo_seed;
  return GenerateWorld(params);
}

// Runs one case and handles reporting. Returns true when the oracle held.
bool RunCase(const World& world, const TopologyKey& topo, const check::DiffCaseConfig& config) {
  Counters().cases.Increment();
  check::DiffReport report = check::RunDiffCase(world.full_graph, config);
  if (report.ok) return true;
  Counters().mismatches.Increment();
  obs::Log(obs::LogLevel::kError, "diffcheck", "oracle.mismatch")
      .Kv("era", topo.era2020 ? "2020" : "2015")
      .Kv("topo_seed", static_cast<std::uint64_t>(topo.topo_seed))
      .Kv("ases", topo.ases)
      .Kv("case_seed", static_cast<std::uint64_t>(config.case_seed))
      .Kv("excluded", static_cast<std::uint64_t>(config.excluded_count))
      .Kv("lock", check::ToString(config.lock))
      .Kv("locked", static_cast<std::uint64_t>(config.locked_count))
      .Kv("senders", static_cast<std::uint64_t>(config.filtered_sender_count))
      .Kv("oracle", report.oracle)
      .Kv("first_asn", report.first_mismatch_asn)
      .Kv("detail", report.detail);
  std::printf("MISMATCH %s\n  replay: flatnet_diffcheck --repro %s\n", report.Summary().c_str(),
              ReproString(topo, config).c_str());
  return false;
}

int RunRepro(const std::string& repro) {
  auto fields = Split(repro, ':');
  if (fields.size() != 8) return Usage();
  TopologyKey topo;
  if (fields[0] == "2020") {
    topo.era2020 = true;
  } else if (fields[0] == "2015") {
    topo.era2020 = false;
  } else {
    return Usage();
  }
  auto topo_seed = ParseU64(fields[1]);
  auto ases = ParseU64(fields[2]);
  auto case_seed = ParseU64(fields[3]);
  auto excluded = ParseU64(fields[4]);
  auto lock = check::ParseLockSetup(fields[5]);
  auto locked = ParseU64(fields[6]);
  auto senders = ParseU64(fields[7]);
  if (!topo_seed || !ases || !case_seed || !excluded || !lock || !locked || !senders) {
    return Usage();
  }
  topo.topo_seed = *topo_seed;
  topo.ases = static_cast<std::uint32_t>(*ases);
  check::DiffCaseConfig config;
  config.case_seed = *case_seed;
  config.excluded_count = *excluded;
  config.lock = *lock;
  config.locked_count = *locked;
  config.filtered_sender_count = *senders;

  World world = BuildWorld(topo);
  std::printf("replaying %s: %zu ASes, %zu edges\n", repro.c_str(), world.num_ases(),
              world.full_graph.num_edges());
  bool ok = RunCase(world, topo, config);
  std::printf("%s\n", ok ? "OK: engines agree" : "MISMATCH (see above)");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t cases = 200;
  std::uint64_t seed = 20200901;
  std::uint64_t min_ases = 200;
  std::uint64_t max_ases = 900;
  std::uint64_t per_topology = 8;
  std::string era = "both";
  std::string repro;
  std::string graph_identity;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    auto next_u64 = [&](std::uint64_t* out) {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (parsed) *out = *parsed;
      return parsed.has_value();
    };
    if (arg == "--cases") {
      if (!next_u64(&cases)) return Usage();
    } else if (arg == "--seed") {
      if (!next_u64(&seed)) return Usage();
    } else if (arg == "--min-ases") {
      if (!next_u64(&min_ases)) return Usage();
    } else if (arg == "--max-ases") {
      if (!next_u64(&max_ases)) return Usage();
    } else if (arg == "--per-topology") {
      if (!next_u64(&per_topology)) return Usage();
    } else if (arg == "--era") {
      const char* v = next();
      if (!v) return Usage();
      era = v;
      if (era != "2020" && era != "2015" && era != "both") return Usage();
    } else if (arg == "--repro") {
      const char* v = next();
      if (!v) return Usage();
      repro = v;
    } else if (arg == "--graph-identity") {
      const char* v = next();
      if (!v) return Usage();
      graph_identity = v;
    } else if (arg == "--log-level") {
      const char* v = next();
      auto level = v ? obs::ParseLogLevel(v) : std::nullopt;
      if (!level) return Usage();
      obs::SetLogLevel(*level);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage();
      metrics_out = v;
    } else {
      return Usage();
    }
  }
  if (min_ases < 50 || max_ases < min_ases || per_topology == 0 || cases == 0) return Usage();

  auto finish = [&](int code) {
    if (!metrics_out.empty()) obs::WriteMetricsFile(metrics_out);
    return code;
  };
  if (!graph_identity.empty()) return finish(RunGraphIdentity(graph_identity));
  if (!repro.empty()) return finish(RunRepro(repro));

  Rng master(seed);
  Stopwatch total;
  std::uint64_t done = 0;
  std::uint64_t failures = 0;
  std::uint64_t topologies = 0;
  while (done < cases) {
    TopologyKey topo;
    topo.era2020 = era == "2020" || (era == "both" && topologies % 2 == 0);
    topo.topo_seed = master.NextU64();
    topo.ases =
        static_cast<std::uint32_t>(min_ases + master.UniformU64(max_ases - min_ases + 1));
    Stopwatch sw;
    World world = BuildWorld(topo);
    ++topologies;
    std::size_t n = world.num_ases();
    obs::Log(obs::LogLevel::kInfo, "diffcheck", "topology")
        .Kv("era", topo.era2020 ? "2020" : "2015")
        .Kv("seed", static_cast<std::uint64_t>(topo.topo_seed))
        .Kv("ases", static_cast<std::uint64_t>(n))
        .Kv("edges", static_cast<std::uint64_t>(world.full_graph.num_edges()))
        .Kv("gen_s", sw.ElapsedSeconds());

    for (std::uint64_t k = 0; k < per_topology && done < cases; ++k, ++done) {
      check::DiffCaseConfig config;
      config.case_seed = master.NextU64();
      // Every third case runs the unrestricted graph; the rest excise up to
      // ~12% of the ASes. Lock setups cycle so all three appear per
      // topology.
      config.excluded_count = k % 3 == 0 ? 0 : 1 + master.UniformU64(n / 8);
      switch (k % 3) {
        case 0: config.lock = check::LockSetup::kNone; break;
        case 1: config.lock = check::LockSetup::kFull; break;
        default: config.lock = check::LockSetup::kDirectOnly; break;
      }
      if (config.lock != check::LockSetup::kNone) {
        config.locked_count = 1 + master.UniformU64(n / 10);
        config.filtered_sender_count = 1 + master.UniformU64(3);
      }
      if (!RunCase(world, topo, config)) ++failures;
    }
  }

  std::printf("diffcheck: %llu cases over %llu topologies, %llu mismatches, %.1fs\n",
              static_cast<unsigned long long>(done),
              static_cast<unsigned long long>(topologies),
              static_cast<unsigned long long>(failures), total.ElapsedSeconds());
  return finish(failures == 0 ? 0 : 1);
}
