// flatnet_serve: resident analysis query service.
//
// Loads a topology once (from a SaveInternet stem, generating and caching
// it when absent) and answers reach / reliance / leak / status queries over
// line-delimited JSON on TCP — see src/serve/protocol.h for the grammar.
// Results are cached (sharded byte-budget LRU), admission is bounded, and
// SIGTERM/SIGINT drain gracefully: admitted queries finish and answer
// before the process exits.
//
// Usage:
//   flatnet_serve [--topology <stem>] [--era 2015|2020] [--ases N] [--seed S]
//                 [--port P] [--bind ADDR] [--port-file <file>]
//                 [--threads N] [--cache-mb MB] [--max-inflight N]
//                 [--default-deadline-ms MS] [--sweep <file>] [--leak <file>]
//                 [--fail <file>] [--log-level <level>] [--metrics-out <file>]
//                 [--slow-query-ms MS] [--recorder-dump <file>]
//                 [--shard I/N] [--max-connections N]
//
// Fleet membership: --shard I/N declares this process shard I of an
// N-shard fleet (0-based). Attach then keeps only this shard's slice of
// each store's rankings and cells under the consistent-hash ring
// (src/fleet/ring.h), and status advertises the owned ranges so the
// flatnet_router can route and merge. --max-connections caps live
// connections; past the cap an accept receives one structured
// `overloaded` error line (the router treats it as backpressure).
//
// Observability: --slow-query-ms (or FLATNET_SLOW_QUERY_MS) logs each
// request slower than the threshold with its phase timeline;
// --recorder-dump (or FLATNET_RECORDER_DUMP) enables the flight recorder
// and installs a fatal-signal handler that dumps it to the named file;
// FLATNET_METRICS_INTERVAL republishes --metrics-out every N seconds while
// the server runs. The `metrics` and `debug` serve ops expose the same
// state over the socket.
//
// With --topology, the stem is loaded when present; otherwise the era
// topology is generated and saved there (atomic publish), so restarts are
// fast. Without --topology the topology lives only in memory. --port 0
// (default) binds an ephemeral port; --port-file publishes the bound port
// for scripted clients.
//
// --sweep attaches a flatnet_sweep result store, enabling the `top` op
// (a load or fingerprint failure is then fatal). Without the flag,
// <stem>.sweep is attached when it exists and matches — best-effort, so a
// stale store logs a warning instead of blocking startup. --leak does the
// same for a flatnet_leaksim --campaign store and the `leakdist` op
// (implicit candidate: <stem>.leak), and --fail for a flatnet_failsim
// store and the `hegemony` + `failure` ops (implicit candidate:
// <stem>.fail).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <filesystem>

#include "core/graph_store.h"
#include "core/serialize.h"
#include "core/study.h"
#include "failsim/store.h"
#include "leaksim/store.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "serve/server.h"
#include "sweep/store.h"
#include "util/error.h"
#include "util/strings.h"

using namespace flatnet;

namespace {

serve::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();  // one atomic store
}

int Usage() {
  std::fprintf(stderr,
               "usage: flatnet_serve [--topology <stem>] [--era 2015|2020] [--ases N] "
               "[--seed S]\n"
               "                     [--port P] [--bind ADDR] [--port-file <file>]\n"
               "                     [--threads N] [--cache-mb MB] [--max-inflight N]\n"
               "                     [--default-deadline-ms MS] [--sweep <file>] "
               "[--leak <file>]\n"
               "                     [--fail <file>] [--log-level <level>] "
               "[--metrics-out <file>]\n"
               "                     [--slow-query-ms MS] [--recorder-dump <file>]\n"
               "                     [--shard I/N] [--max-connections N]\n");
  return 2;
}

Internet LoadOrGenerate(const std::string& stem, const std::string& era, std::uint32_t ases,
                        std::uint64_t seed) {
  // A `.graph` topology is memory-mapped: adjacency serves straight from
  // the file, no builder, no hash maps.
  if (IsGraphStorePath(stem)) {
    if (std::filesystem::exists(stem)) {
      std::fprintf(stderr, "mapping topology from %s...\n", stem.c_str());
      return LoadInternetBinary(stem);
    }
  } else if (!stem.empty() && InternetCacheExists(stem)) {
    std::fprintf(stderr, "loading topology from %s...\n", stem.c_str());
    return LoadInternet(stem);
  }
  StudyOptions options;
  options.generator =
      era == "2015" ? GeneratorParams::Era2015(ases) : GeneratorParams::Era2020(ases);
  if (seed != 0) options.generator.seed = seed;
  options.campaign.seed = options.generator.seed ^ 0xca3;
  std::fprintf(stderr, "generating %s-era Internet (%u ASes, seed %llu)...\n", era.c_str(),
               options.generator.total_ases,
               static_cast<unsigned long long>(options.generator.seed));
  Study study(options);
  Internet internet = study.internet();
  if (IsGraphStorePath(stem)) {
    SaveInternetBinary(internet, stem);
    std::fprintf(stderr, "cached topology at %s\n", stem.c_str());
  } else if (!stem.empty()) {
    SaveInternet(internet, stem);
    std::fprintf(stderr, "cached topology at %s.{as-rel.txt,meta.tsv}\n", stem.c_str());
  }
  return internet;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stem;
  std::string era = "2020";
  std::uint32_t ases = 0;
  std::uint64_t seed = 0;
  std::string bind_address = "127.0.0.1";
  std::uint64_t port = 0;
  std::string port_file;
  std::string metrics_out;
  std::string recorder_dump;
  std::string sweep_path;
  std::string leak_path;
  std::string fail_path;
  std::uint64_t max_connections = 0;
  serve::DispatcherOptions dispatch;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    auto next_u64 = [&](std::uint64_t* out) {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return false;
      *out = *parsed;
      return true;
    };
    std::uint64_t value = 0;
    if (arg == "--topology") {
      const char* v = next();
      if (!v) return Usage();
      stem = v;
    } else if (arg == "--era") {
      const char* v = next();
      if (!v || (std::strcmp(v, "2015") != 0 && std::strcmp(v, "2020") != 0)) return Usage();
      era = v;
    } else if (arg == "--ases") {
      if (!next_u64(&value)) return Usage();
      ases = static_cast<std::uint32_t>(value);
    } else if (arg == "--seed") {
      if (!next_u64(&seed)) return Usage();
    } else if (arg == "--port") {
      if (!next_u64(&port) || port > 65535) return Usage();
    } else if (arg == "--bind") {
      const char* v = next();
      if (!v) return Usage();
      bind_address = v;
    } else if (arg == "--port-file") {
      const char* v = next();
      if (!v) return Usage();
      port_file = v;
    } else if (arg == "--threads") {
      if (!next_u64(&value)) return Usage();
      dispatch.threads = value;
    } else if (arg == "--cache-mb") {
      if (!next_u64(&value)) return Usage();
      dispatch.cache_bytes = value * 1024 * 1024;
    } else if (arg == "--max-inflight") {
      if (!next_u64(&value) || value == 0) return Usage();
      dispatch.max_inflight = value;
    } else if (arg == "--default-deadline-ms") {
      if (!next_u64(&value)) return Usage();
      dispatch.default_deadline_ms = static_cast<std::int64_t>(value);
    } else if (arg == "--slow-query-ms") {
      if (!next_u64(&value)) return Usage();
      dispatch.slow_query_ms = static_cast<std::int64_t>(value);
    } else if (arg == "--shard") {
      // I/N, e.g. --shard 0/3: shard index / fleet size.
      const char* v = next();
      if (!v) return Usage();
      const char* slash = std::strchr(v, '/');
      if (!slash) return Usage();
      auto index = ParseU64(std::string(v, slash));
      auto count = ParseU64(slash + 1);
      if (!index || !count || *count == 0 || *index >= *count) return Usage();
      dispatch.shard_index = *index;
      dispatch.shard_count = *count;
    } else if (arg == "--max-connections") {
      if (!next_u64(&max_connections)) return Usage();
    } else if (arg == "--recorder-dump") {
      const char* v = next();
      if (!v) return Usage();
      recorder_dump = v;
    } else if (arg == "--sweep") {
      const char* v = next();
      if (!v) return Usage();
      sweep_path = v;
    } else if (arg == "--leak") {
      const char* v = next();
      if (!v) return Usage();
      leak_path = v;
    } else if (arg == "--fail") {
      const char* v = next();
      if (!v) return Usage();
      fail_path = v;
    } else if (arg == "--log-level") {
      const char* v = next();
      auto level = v ? obs::ParseLogLevel(v) : std::nullopt;
      if (!level) return Usage();
      obs::SetLogLevel(*level);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage();
      metrics_out = v;
    } else {
      return Usage();
    }
  }

  obs::RegisterCoreMetrics();
  if (!recorder_dump.empty()) {
    // The flag copy must outlive the process: the handler reads it at
    // crash time. InstallCrashHandler copies into static storage.
    obs::InstallCrashHandler(recorder_dump);
  } else {
    obs::InstallCrashHandlerFromEnv();
  }
  Internet internet = LoadOrGenerate(stem, era, ases, seed);
  std::fprintf(stderr, "topology: %zu ASes, %zu relationships\n", internet.num_ases(),
               internet.graph().num_edges());

  serve::Dispatcher dispatcher(internet, dispatch);

  // Explicit --sweep must attach; an implicit <stem>.sweep is opportunistic
  // (a store from an older topology just logs and is skipped).
  bool explicit_sweep = !sweep_path.empty();
  if (!explicit_sweep && !stem.empty()) {
    std::string candidate = stem + ".sweep";
    if (std::filesystem::exists(candidate)) sweep_path = candidate;
  }
  if (!sweep_path.empty()) {
    try {
      dispatcher.AttachSweepStore(sweep::SweepStore::Load(sweep_path), sweep_path);
      std::fprintf(stderr, "sweep store: %s (top op enabled)\n", sweep_path.c_str());
    } catch (const Error& e) {
      if (explicit_sweep) {
        std::fprintf(stderr, "cannot attach sweep store: %s\n", e.what());
        return 1;
      }
      std::fprintf(stderr, "ignoring sweep store %s: %s\n", sweep_path.c_str(), e.what());
    }
  }

  // Same contract for the leak-campaign store: explicit --leak is fatal on
  // failure, the implicit <stem>.leak candidate is opportunistic.
  bool explicit_leak = !leak_path.empty();
  if (!explicit_leak && !stem.empty()) {
    std::string candidate = stem + ".leak";
    if (std::filesystem::exists(candidate)) leak_path = candidate;
  }
  if (!leak_path.empty()) {
    try {
      dispatcher.AttachLeakStore(leaksim::LeakStore::Load(leak_path), leak_path);
      std::fprintf(stderr, "leak store: %s (leakdist op enabled)\n", leak_path.c_str());
    } catch (const Error& e) {
      if (explicit_leak) {
        std::fprintf(stderr, "cannot attach leak store: %s\n", e.what());
        return 1;
      }
      std::fprintf(stderr, "ignoring leak store %s: %s\n", leak_path.c_str(), e.what());
    }
  }

  // And for the failure-campaign store: explicit --fail is fatal on
  // failure, the implicit <stem>.fail candidate is opportunistic.
  bool explicit_fail = !fail_path.empty();
  if (!explicit_fail && !stem.empty()) {
    std::string candidate = stem + ".fail";
    if (std::filesystem::exists(candidate)) fail_path = candidate;
  }
  if (!fail_path.empty()) {
    try {
      dispatcher.AttachFailStore(failsim::FailStore::Load(fail_path), fail_path);
      std::fprintf(stderr, "fail store: %s (hegemony + failure ops enabled)\n",
                   fail_path.c_str());
    } catch (const Error& e) {
      if (explicit_fail) {
        std::fprintf(stderr, "cannot attach fail store: %s\n", e.what());
        return 1;
      }
      std::fprintf(stderr, "ignoring fail store %s: %s\n", fail_path.c_str(), e.what());
    }
  }

  serve::ServerOptions server_options;
  server_options.bind_address = bind_address;
  server_options.port = static_cast<std::uint16_t>(port);
  server_options.max_connections = max_connections;
  serve::Server server(dispatcher, server_options);

  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
      return 1;
    }
  }
  std::printf("listening on %s:%u\n", bind_address.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  {
    // Republishes --metrics-out on the FLATNET_METRICS_INTERVAL cadence
    // while the server runs; a no-op when either is unset.
    obs::MetricsFlusher flusher(metrics_out, obs::MetricsFlusher::IntervalFromEnv());
    server.Run();
  }
  g_server = nullptr;

  serve::CacheStats cache = dispatcher.cache_stats();
  std::printf("shutdown: cache %llu hits / %llu misses / %llu evictions, %llu entries\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions),
              static_cast<unsigned long long>(cache.entries));
  if (!metrics_out.empty()) obs::WriteMetricsFile(metrics_out);
  return 0;
}
