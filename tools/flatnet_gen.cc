// flatnet_gen: generate a synthetic Internet and write it out as a
// CAIDA-format AS-relationship file plus metadata sidecar (loadable by
// flatnet_reach / flatnet_leaksim / LoadInternet, and by any external tool
// that speaks the CAIDA serial-1 format).
//
// Usage: flatnet_gen [--era 2015|2020] [--ases N] [--seed S]
//                    [--truth] <output-stem>
//   --truth  exports the ground-truth topology instead of the measured
//            (BGP + inferred cloud neighbors) analysis topology.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/serialize.h"
#include "core/study.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "util/strings.h"

using namespace flatnet;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flatnet_gen [--era 2015|2020] [--ases N] [--seed S] [--truth] "
               "[--log-level <level>] [--metrics-out <file>] <output-stem>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string era = "2020";
  std::uint32_t ases = 0;
  std::uint64_t seed = 0;
  bool use_truth = false;
  std::string stem;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--log-level") {
      const char* v = next();
      auto level = v ? obs::ParseLogLevel(v) : std::nullopt;
      if (!level) return Usage();
      obs::SetLogLevel(*level);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage();
      metrics_out = v;
    } else if (arg == "--era") {
      const char* v = next();
      if (!v || (std::strcmp(v, "2015") != 0 && std::strcmp(v, "2020") != 0)) return Usage();
      era = v;
    } else if (arg == "--ases") {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return Usage();
      ases = static_cast<std::uint32_t>(*parsed);
    } else if (arg == "--seed") {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return Usage();
      seed = *parsed;
    } else if (arg == "--truth") {
      use_truth = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      stem = arg;
    }
  }
  if (stem.empty()) return Usage();

  StudyOptions options;
  options.generator =
      era == "2015" ? GeneratorParams::Era2015(ases) : GeneratorParams::Era2020(ases);
  if (seed != 0) options.generator.seed = seed;
  options.campaign.seed = options.generator.seed ^ 0xca3;

  std::fprintf(stderr, "generating %s-era Internet (%u ASes, seed %llu)...\n", era.c_str(),
               options.generator.total_ases,
               static_cast<unsigned long long>(options.generator.seed));
  Study study(options);
  const Internet& internet = use_truth ? study.truth() : study.internet();
  SaveInternet(internet, stem);
  std::printf("wrote %s.as-rel.txt (%zu ASes, %zu edges) and %s.meta.tsv [%s topology]\n",
              stem.c_str(), internet.num_ases(), internet.graph().num_edges(), stem.c_str(),
              use_truth ? "ground-truth" : "measured");
  if (!metrics_out.empty()) obs::WriteMetricsFile(metrics_out);
  return 0;
}
