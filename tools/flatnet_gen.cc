// flatnet_gen: generate a synthetic Internet and write it out as a
// CAIDA-format AS-relationship file plus metadata sidecar (loadable by
// flatnet_reach / flatnet_leaksim / LoadInternet, and by any external tool
// that speaks the CAIDA serial-1 format), and/or as a binary `.graph`
// store that flatnet_serve / flatnet_sweep memory-map without rebuilding
// adjacency.
//
// Usage: flatnet_gen [--era 2015|2020] [--ases N] [--seed S]
//                    [--truth] [--world-only] [--graph-out <file.graph>]
//                    [--stream-budget-mb N] [--no-prefixes] [<output-stem>]
//   --truth       exports the ground-truth topology instead of the measured
//                 (BGP + inferred cloud neighbors) analysis topology.
//   --world-only  skips the traceroute campaign entirely and exports the
//                 generator's ground truth — the only viable mode at the
//                 million-AS scale (implies --truth).
//   --graph-out   also (or only) writes the binary topology store.
//   --stream-budget-mb  caps the generator's resident half-edge buffers;
//                 past the cap, sorted runs spill to disk and merge at
//                 assembly. Output is bit-identical at any budget.
//   --no-prefixes skips IPv4 prefix assignment (required above ~500k ASes,
//                 where the address pools run out; topology is unaffected).
//
// Peak RSS (getrusage) is reported on exit so scale runs can assert the
// streaming mode's memory ceiling.
#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/graph_store.h"
#include "core/serialize.h"
#include "core/study.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/strings.h"

using namespace flatnet;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flatnet_gen [--era 2015|2020] [--ases N] [--seed S] [--truth]\n"
               "                   [--world-only] [--graph-out <file.graph>]\n"
               "                   [--stream-budget-mb N] [--no-prefixes]\n"
               "                   [--log-level <level>] [--metrics-out <file>]\n"
               "                   [<output-stem>]\n");
  return 2;
}

long PeakRssKb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
  return usage.ru_maxrss;  // kilobytes on Linux
}

}  // namespace

int main(int argc, char** argv) {
  std::string era = "2020";
  std::uint32_t ases = 0;
  std::uint64_t seed = 0;
  std::uint64_t stream_budget_mb = 0;
  bool use_truth = false;
  bool world_only = false;
  bool no_prefixes = false;
  std::string stem;
  std::string graph_out;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--log-level") {
      const char* v = next();
      auto level = v ? obs::ParseLogLevel(v) : std::nullopt;
      if (!level) return Usage();
      obs::SetLogLevel(*level);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage();
      metrics_out = v;
    } else if (arg == "--era") {
      const char* v = next();
      if (!v || (std::strcmp(v, "2015") != 0 && std::strcmp(v, "2020") != 0)) return Usage();
      era = v;
    } else if (arg == "--ases") {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return Usage();
      ases = static_cast<std::uint32_t>(*parsed);
    } else if (arg == "--seed") {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return Usage();
      seed = *parsed;
    } else if (arg == "--stream-budget-mb") {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return Usage();
      stream_budget_mb = *parsed;
    } else if (arg == "--graph-out") {
      const char* v = next();
      if (!v) return Usage();
      graph_out = v;
    } else if (arg == "--truth") {
      use_truth = true;
    } else if (arg == "--world-only") {
      world_only = true;
    } else if (arg == "--no-prefixes") {
      no_prefixes = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      stem = arg;
    }
  }
  if (stem.empty() && graph_out.empty()) return Usage();

  GeneratorParams generator =
      era == "2015" ? GeneratorParams::Era2015(ases) : GeneratorParams::Era2020(ases);
  if (seed != 0) generator.seed = seed;
  generator.stream_budget_bytes = stream_budget_mb * 1024 * 1024;
  generator.assign_prefixes = !no_prefixes;

  std::fprintf(stderr, "generating %s-era Internet (%u ASes, seed %llu%s)...\n", era.c_str(),
               generator.total_ases, static_cast<unsigned long long>(generator.seed),
               world_only ? ", world-only" : "");
  Stopwatch sw;
  Internet internet;
  const char* flavor;
  if (world_only) {
    World world = GenerateWorld(generator);
    internet = Internet(std::move(world.full_graph), std::move(world.tiers),
                        std::move(world.metadata));
    flavor = "ground-truth";
  } else {
    StudyOptions options;
    options.generator = generator;
    options.campaign.seed = generator.seed ^ 0xca3;
    Study study(options);
    internet = use_truth ? study.truth() : study.internet();
    flavor = use_truth ? "ground-truth" : "measured";
  }
  double generate_s = sw.ElapsedSeconds();

  if (!stem.empty()) {
    SaveInternet(internet, stem);
    std::printf("wrote %s.as-rel.txt (%zu ASes, %zu edges) and %s.meta.tsv [%s topology]\n",
                stem.c_str(), internet.num_ases(), internet.graph().num_edges(), stem.c_str(),
                flavor);
  }
  if (!graph_out.empty()) {
    SaveInternetBinary(internet, graph_out);
    std::printf("wrote %s (%zu ASes, %zu edges, fingerprint %016llx) [%s topology]\n",
                graph_out.c_str(), internet.num_ases(), internet.graph().num_edges(),
                static_cast<unsigned long long>(ReadGraphStoreFingerprint(graph_out)), flavor);
  }
  std::fprintf(stderr, "generated in %.2fs, peak RSS %ld KB\n", generate_s, PeakRssKb());
  if (!metrics_out.empty()) obs::WriteMetricsFile(metrics_out);
  return 0;
}
