// flatnet_failsim: AS hegemony scores and failure-cascade campaigns from
// on-disk topology files.
//
// Two modes:
//
//   Hegemony (--hegemony): prints the top --top ASes by hegemony score
//   for one origin — the transit ASes the origin's routes depend on,
//   viewpoint-trimmed per Fontugne et al.
//     flatnet_failsim <stem> --hegemony --origin <asn> [--top N] [--trim F]
//
//   Campaign (default): origins x scenarios, evaluated by the parallel
//   engine (src/failsim/) and published as a columnar `.fail` store that
//   flatnet_serve answers ranking/series queries from (`hegemony` and
//   `failure` ops). Origins come from --origin (pinned) or --origins N
//   (drawn without replacement from the master seed). Results are
//   byte-identical at any --threads and --chunk value.
//     flatnet_failsim <stem> [--origins N | --origin <asn>] [--trials N]
//                     [--seed S] [--scenarios LIST] [--severity K]
//                     [--threads N] [--chunk N] [--out <file>] [--resume]
//                     [--users] [--trim F]
//
// Completed chunks are journaled to <out>.journal, so a killed campaign
// restarted with --resume recomputes only the missing chunks and produces
// a byte-identical store. --throttle-chunk-ms and --max-chunks are test
// hooks (slow the run so a kill can land mid-run / stop after N chunks).
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "bgp/hegemony.h"
#include "bgp/propagation.h"
#include "core/graph_store.h"
#include "core/serialize.h"
#include "failsim/engine.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace flatnet;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: flatnet_failsim <stem> [--origins N | --origin <asn>] [--trials N]\n"
      "                       [--seed S] [--scenarios single_as,tier1,hegemony_cascade,\n"
      "                        link_set] [--severity K] [--threads N] [--chunk N]\n"
      "                       [--out <file>] [--resume] [--users] [--trim F]\n"
      "                       [--throttle-chunk-ms MS] [--max-chunks N]\n"
      "                       [--log-level <level>] [--metrics-out <file>]\n"
      "       flatnet_failsim <stem> --hegemony --origin <asn> [--top N] [--trim F]\n"
      "                       [--log-level <level>] [--metrics-out <file>]\n");
  return 2;
}

bool ParseScenarios(const std::string& list, std::vector<failsim::FailScenario>* out) {
  out->clear();
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    std::string name = list.substr(start, comma - start);
    if (name == "single_as") {
      out->push_back(failsim::FailScenario::kSingleAs);
    } else if (name == "tier1") {
      out->push_back(failsim::FailScenario::kTier1);
    } else if (name == "hegemony_cascade") {
      out->push_back(failsim::FailScenario::kHegemonyCascade);
    } else if (name == "link_set") {
      out->push_back(failsim::FailScenario::kLinkSet);
    } else {
      return false;
    }
    start = comma + 1;
  }
  return !out->empty();
}

void PrintSeries(const char* label, std::vector<double> f) {
  double mean =
      f.empty() ? 0.0
                : std::accumulate(f.begin(), f.end(), 0.0) / static_cast<double>(f.size());
  std::printf("%s mean %.2f%%  median %.2f%%  p90 %.2f%%  p99 %.2f%%  max %.2f%%\n", label,
              100 * mean, 100 * Quantile(f, 0.5), 100 * Quantile(f, 0.9),
              100 * Quantile(f, 0.99), 100 * Quantile(f, 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  std::string stem;
  std::string out;
  std::string metrics_out;
  std::optional<std::uint64_t> origin_asn;
  std::size_t trials = 32;
  std::size_t origins = 0;
  std::size_t top = 10;
  std::uint64_t seed = 1;
  std::uint32_t severity = 2;
  bool hegemony_mode = false;
  bool use_users = false;
  std::vector<failsim::FailScenario> scenarios = {
      failsim::FailScenario::kSingleAs,
      failsim::FailScenario::kTier1,
      failsim::FailScenario::kHegemonyCascade,
      failsim::FailScenario::kLinkSet,
  };
  failsim::FailCampaignOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    auto next_u64 = [&](std::uint64_t* value) {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return false;
      *value = *parsed;
      return true;
    };
    std::uint64_t value = 0;
    if (arg == "--log-level") {
      const char* v = next();
      auto level = v ? obs::ParseLogLevel(v) : std::nullopt;
      if (!level) return Usage();
      obs::SetLogLevel(*level);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage();
      metrics_out = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return Usage();
      out = v;
    } else if (arg == "--origin") {
      if (!next_u64(&value)) return Usage();
      origin_asn = value;
    } else if (arg == "--origins") {
      if (!next_u64(&value) || value == 0) return Usage();
      origins = static_cast<std::size_t>(value);
    } else if (arg == "--trials") {
      if (!next_u64(&value)) return Usage();
      trials = static_cast<std::size_t>(value);
    } else if (arg == "--seed") {
      if (!next_u64(&value)) return Usage();
      seed = value;
    } else if (arg == "--top") {
      if (!next_u64(&value) || value == 0) return Usage();
      top = static_cast<std::size_t>(value);
    } else if (arg == "--severity") {
      if (!next_u64(&value) || value == 0) return Usage();
      severity = static_cast<std::uint32_t>(value);
    } else if (arg == "--trim") {
      const char* v = next();
      auto parsed = v ? ParseDouble(v) : std::nullopt;
      if (!parsed || *parsed < 0.0 || *parsed >= 0.5) return Usage();
      options.hegemony_trim = *parsed;
    } else if (arg == "--threads") {
      if (!next_u64(&value)) return Usage();
      options.threads = value;
    } else if (arg == "--chunk") {
      if (!next_u64(&value) || value == 0) return Usage();
      options.chunk_trials = static_cast<std::uint32_t>(value);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--throttle-chunk-ms") {
      if (!next_u64(&value)) return Usage();
      options.throttle_chunk_ms = static_cast<std::uint32_t>(value);
    } else if (arg == "--max-chunks") {
      if (!next_u64(&value)) return Usage();
      options.max_chunks = static_cast<std::uint32_t>(value);
    } else if (arg == "--hegemony") {
      hegemony_mode = true;
    } else if (arg == "--users") {
      use_users = true;
    } else if (arg == "--scenarios") {
      const char* v = next();
      if (!v || !ParseScenarios(v, &scenarios)) return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      stem = arg;
    }
  }
  if (stem.empty()) return Usage();
  if (hegemony_mode && !origin_asn.has_value()) {
    std::fprintf(stderr, "flatnet_failsim: --hegemony requires --origin\n");
    return Usage();
  }
  if (origin_asn.has_value() && *origin_asn == 0) {
    // ASN 0 is reserved (RFC 7607) and never appears in a topology.
    std::fprintf(stderr, "flatnet_failsim: ASN 0 is reserved and cannot be an origin\n");
    return 2;
  }
  if (!hegemony_mode && origins == 0 && !origin_asn.has_value()) origins = 5;

  obs::RegisterCoreMetrics();
  obs::InstallCrashHandlerFromEnv();
  // Republishes --metrics-out on the FLATNET_METRICS_INTERVAL cadence so a
  // collector can watch a long campaign live; no-op when either is unset.
  obs::MetricsFlusher flusher(metrics_out, obs::MetricsFlusher::IntervalFromEnv());

  auto finish = [&](int code) {
    if (!metrics_out.empty()) obs::WriteMetricsFile(metrics_out);
    return code;
  };

  try {
    Internet internet = LoadInternetAuto(stem);
    std::size_t n = internet.num_ases();

    auto lookup = [&](std::uint64_t asn) {
      auto id = internet.graph().IdOf(static_cast<Asn>(asn));
      if (!id) {
        throw Error(StrFormat("AS%llu not present in the topology",
                              static_cast<unsigned long long>(asn)));
      }
      return *id;
    };

    if (hegemony_mode) {
      AsId origin = lookup(*origin_asn);
      RouteComputation computation(internet.graph(), {{.node = origin}});
      HegemonyOptions hegemony_options;
      hegemony_options.trim = options.hegemony_trim;
      HegemonyResult result = ComputeHegemony(computation, hegemony_options);
      std::vector<AsId> ranking = HegemonyRanking(result);
      std::printf("origin AS%llu (%s): %zu viewpoints, trim %zu each end\n",
                  static_cast<unsigned long long>(*origin_asn),
                  internet.NameOf(origin).c_str(), result.num_viewpoints,
                  result.trimmed_each_end);
      for (std::size_t i = 0; i < std::min(top, ranking.size()); ++i) {
        AsId a = ranking[i];
        std::printf("%3zu. AS%-10llu %-24s %.6f\n", i + 1,
                    static_cast<unsigned long long>(internet.graph().AsnOf(a)),
                    internet.NameOf(a).c_str(), result.hegemony[a]);
      }
      return finish(0);
    }

    // Campaign mode: origins x scenarios. The master seed drives both the
    // origin draw and each cell's trial seed, so a campaign is fully
    // reproducible from (topology, seed, origins, scenarios, trials).
    Rng master(seed);
    std::vector<AsId> origin_ids;
    if (origin_asn.has_value()) {
      origin_ids.push_back(lookup(*origin_asn));
    } else {
      for (std::uint32_t id : master.SampleWithoutReplacement(
               static_cast<std::uint32_t>(n),
               static_cast<std::uint32_t>(std::min(origins, n)))) {
        origin_ids.push_back(static_cast<AsId>(id));
      }
    }

    std::vector<failsim::FailCellSpec> cells;
    cells.reserve(origin_ids.size() * scenarios.size());
    for (AsId origin : origin_ids) {
      for (failsim::FailScenario scenario : scenarios) {
        failsim::FailCellSpec spec;
        spec.origin = origin;
        spec.scenario = scenario;
        spec.severity = scenario == failsim::FailScenario::kLinkSet ? severity : 0;
        spec.seed = master.NextU64();  // == Rng::Fork per cell
        spec.trials = static_cast<std::uint32_t>(trials);
        cells.push_back(spec);
      }
    }

    std::vector<double> users;
    if (use_users) {
      users.resize(n);
      for (AsId id = 0; id < n; ++id) users[id] = internet.metadata().Get(id).users;
      options.users = &users;
    }
    if (out.empty()) out = stem + ".fail";
    options.journal_path = out + ".journal";

    std::fprintf(stderr, "topology: %zu ASes, %zu relationships; campaign: %zu cells\n", n,
                 internet.graph().num_edges(), cells.size());

    failsim::FailCampaignStats stats;
    failsim::FailTable table = failsim::RunFailureCampaign(internet, cells, options, &stats);
    std::fprintf(stderr,
                 "campaign: %zu/%zu chunks computed (%zu resumed), %zu trials in %.2fs "
                 "(%.0f trials/s)\n",
                 stats.chunks_computed, stats.chunks_total, stats.chunks_resumed,
                 stats.trials_evaluated, stats.seconds,
                 stats.seconds > 0 ? static_cast<double>(stats.trials_evaluated) / stats.seconds
                                   : 0.0);
    if (!stats.complete) {
      // A --max-chunks run leaves the journal in place so the next
      // --resume invocation picks up where this one stopped.
      std::fprintf(stderr, "partial run (--max-chunks): journal kept at %s, no store written\n",
                   options.journal_path.c_str());
      return finish(0);
    }

    for (const failsim::FailCellResult& cell : table.cells) {
      Asn asn = internet.graph().AsnOf(cell.spec.origin);
      if (cell.UnderCollected()) {
        std::fprintf(stderr,
                     "warning: origin AS%llu scenario \"%s\": only %zu of %u trials "
                     "collected (scenario pool exhausted)\n",
                     static_cast<unsigned long long>(asn), ToString(cell.spec.scenario),
                     cell.collected(), cell.spec.trials);
      }
      std::string label = StrFormat("AS%llu %-18s loss", static_cast<unsigned long long>(asn),
                                    ToString(cell.spec.scenario));
      PrintSeries(label.c_str(), cell.loss_ases);
    }
    failsim::FinalizeFailStore(out, table, options.journal_path);
    std::printf("wrote %s\n", out.c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "flatnet_failsim: %s\n", e.what());
    return finish(1);
  }
  return finish(0);
}
