// flatnet_router: fleet frontend for sharded flatnet_serve backends.
//
// Listens on the same line-delimited JSON protocol as flatnet_serve and
// routes each request across N backend shards (started with --shard i/N)
// over a consistent-hash ring: point queries go to the owning shard (with
// failover and hedging for compute ops), `top` is scatter-gathered and
// k-way merged byte-identical to a single-process answer, and `status`
// returns the merged fleet view. Dead shards degrade ranking answers to
// `partial: true` instead of errors; a restarted shard heals back in via
// the background prober. See src/fleet/router.h for the routing table.
//
// Usage:
//   flatnet_router --backends HOST:PORT,HOST:PORT,...
//                  [--port P] [--bind ADDR] [--port-file <file>]
//                  [--vnodes N] [--probe-interval-ms MS]
//                  [--request-timeout-ms MS] [--no-hedging]
//                  [--hedge-multiplier X] [--hedge-min-ms MS]
//                  [--hedge-max-ms MS] [--max-connections N]
//                  [--log-level <level>] [--metrics-out <file>]
//
// --backends lists the shards in ring order: the i-th address must be the
// backend started with --shard i/N (the ownership ring is derived from the
// count, so order is identity). A backend may also be given as a bare port
// (127.0.0.1 assumed). Hedging re-issues a slow compute query to the next
// distinct live shard once the owner has been silent for
// multiplier x its EWMA latency (clamped to [min,max]); first response
// wins.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/router.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "serve/server.h"
#include "util/error.h"
#include "util/strings.h"

using namespace flatnet;

namespace {

serve::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();  // one atomic store
}

int Usage() {
  std::fprintf(stderr,
               "usage: flatnet_router --backends HOST:PORT,HOST:PORT,...\n"
               "                      [--port P] [--bind ADDR] [--port-file <file>]\n"
               "                      [--vnodes N] [--probe-interval-ms MS]\n"
               "                      [--request-timeout-ms MS] [--no-hedging]\n"
               "                      [--hedge-multiplier X] [--hedge-min-ms MS]\n"
               "                      [--hedge-max-ms MS] [--max-connections N]\n"
               "                      [--log-level <level>] [--metrics-out <file>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fleet::RouterOptions router_options;
  std::string bind_address = "127.0.0.1";
  std::uint64_t port = 0;
  std::string port_file;
  std::string metrics_out;
  std::uint64_t max_connections = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    auto next_u64 = [&](std::uint64_t* out) {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return false;
      *out = *parsed;
      return true;
    };
    auto next_double = [&](double* out) {
      const char* v = next();
      if (!v) return false;
      char* end = nullptr;
      double parsed = std::strtod(v, &end);
      if (end == v || *end != '\0' || parsed < 0) return false;
      *out = parsed;
      return true;
    };
    std::uint64_t value = 0;
    try {
      if (arg == "--backends") {
        const char* v = next();
        if (!v) return Usage();
        for (std::string_view part : Split(v, ',')) {
          if (part.empty()) continue;
          router_options.backends.push_back(fleet::ParseBackendAddress(std::string(part)));
        }
      } else if (arg == "--backend") {
        // Repeatable single-address form, for scripts that build the list.
        const char* v = next();
        if (!v) return Usage();
        router_options.backends.push_back(fleet::ParseBackendAddress(v));
      } else if (arg == "--port") {
        if (!next_u64(&port) || port > 65535) return Usage();
      } else if (arg == "--bind") {
        const char* v = next();
        if (!v) return Usage();
        bind_address = v;
      } else if (arg == "--port-file") {
        const char* v = next();
        if (!v) return Usage();
        port_file = v;
      } else if (arg == "--vnodes") {
        if (!next_u64(&value) || value == 0) return Usage();
        router_options.vnodes = value;
      } else if (arg == "--probe-interval-ms") {
        if (!next_u64(&value) || value == 0) return Usage();
        router_options.probe_interval = std::chrono::milliseconds(value);
      } else if (arg == "--request-timeout-ms") {
        if (!next_u64(&value) || value == 0) return Usage();
        router_options.request_timeout = std::chrono::milliseconds(value);
      } else if (arg == "--no-hedging") {
        router_options.hedging = false;
      } else if (arg == "--hedge-multiplier") {
        if (!next_double(&router_options.hedge.multiplier)) return Usage();
      } else if (arg == "--hedge-min-ms") {
        if (!next_double(&router_options.hedge.min_ms)) return Usage();
      } else if (arg == "--hedge-max-ms") {
        if (!next_double(&router_options.hedge.max_ms)) return Usage();
      } else if (arg == "--max-connections") {
        if (!next_u64(&max_connections)) return Usage();
      } else if (arg == "--log-level") {
        const char* v = next();
        auto level = v ? obs::ParseLogLevel(v) : std::nullopt;
        if (!level) return Usage();
        obs::SetLogLevel(*level);
      } else if (arg == "--metrics-out") {
        const char* v = next();
        if (!v) return Usage();
        metrics_out = v;
      } else {
        return Usage();
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "%s: %s\n", arg.c_str(), e.what());
      return Usage();
    }
  }
  if (router_options.backends.empty()) {
    std::fprintf(stderr, "flatnet_router: at least one --backends address is required\n");
    return Usage();
  }

  obs::RegisterCoreMetrics();
  obs::InstallCrashHandlerFromEnv();

  try {
    fleet::FleetRouter router(router_options);
    router.Start();
    std::fprintf(stderr, "fleet: %zu shards, %zu live\n", router_options.backends.size(),
                 router.pool().NumAlive());

    serve::ServerOptions server_options;
    server_options.bind_address = bind_address;
    server_options.port = static_cast<std::uint16_t>(port);
    server_options.max_connections = max_connections;
    serve::Server server(
        [&router](const std::string& line, std::function<void(std::string)> done,
                  std::chrono::steady_clock::time_point received_at) {
          router.Handle(line, std::move(done), received_at);
        },
        /*drain=*/nullptr, server_options);

    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << server.port() << '\n';
      if (!out) {
        std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
        return 1;
      }
    }
    std::printf("routing on %s:%u\n", bind_address.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    g_server = &server;
    std::signal(SIGTERM, HandleSignal);
    std::signal(SIGINT, HandleSignal);
    {
      obs::MetricsFlusher flusher(metrics_out, obs::MetricsFlusher::IntervalFromEnv());
      server.Run();
    }
    g_server = nullptr;
    router.Stop();

    fleet::RouterStats stats = router.stats();
    std::printf(
        "shutdown: %llu requests, %llu errors, %llu hedges (%llu won), %llu partial\n",
        static_cast<unsigned long long>(stats.requests),
        static_cast<unsigned long long>(stats.errors),
        static_cast<unsigned long long>(stats.hedge_issued),
        static_cast<unsigned long long>(stats.hedge_won),
        static_cast<unsigned long long>(stats.partial_answers));
    if (!metrics_out.empty()) obs::WriteMetricsFile(metrics_out);
  } catch (const Error& e) {
    std::fprintf(stderr, "flatnet_router: %s\n", e.what());
    return 1;
  }
  return 0;
}
