// flatnet_leaksim: route-leak resilience analysis from on-disk topology
// files (the §8 simulations as a command-line tool).
//
// Two modes:
//
//   Single victim (default): one (victim, scenario) series, serial.
//     flatnet_leaksim <stem> --victim <asn> [--trials N] [--seed S]
//                     [--lock none|t1|t1t2|global] [--hierarchy-only]
//                     [--pre-erratum]
//
//   Campaign (--campaign): victims x all five scenarios, evaluated by the
//   parallel engine (src/leaksim/) and published as a columnar `.leak`
//   store that flatnet_serve answers percentile queries from (`leakdist`
//   op). Victims come from --victim (pinned) or --victims N (drawn
//   without replacement from the master seed). Results are byte-identical
//   at any --threads value and equal to the serial mode per cell.
//     flatnet_leaksim <stem> --campaign [--victims N | --victim <asn>]
//                     [--trials N] [--seed S] [--threads N] [--chunk N]
//                     [--out <file>] [--resume] [--users] [--pre-erratum]
//
// Completed chunks are journaled to <out>.journal, so a killed campaign
// restarted with --resume recomputes only the missing chunks and produces
// a byte-identical store. --throttle-chunk-ms and --max-chunks are test
// hooks (slow the run so a kill can land mid-run / stop after N chunks).
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "core/leak_scenarios.h"
#include "core/graph_store.h"
#include "core/serialize.h"
#include "leaksim/engine.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace flatnet;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flatnet_leaksim <stem> --victim <asn> [--trials N] [--seed S]\n"
               "                       [--lock none|t1|t1t2|global] [--hierarchy-only]\n"
               "                       [--pre-erratum] [--log-level <level>]\n"
               "                       [--metrics-out <file>]\n"
               "       flatnet_leaksim <stem> --campaign [--victims N | --victim <asn>]\n"
               "                       [--trials N] [--seed S] [--threads N] [--chunk N]\n"
               "                       [--out <file>] [--resume] [--users] [--pre-erratum]\n"
               "                       [--throttle-chunk-ms MS] [--max-chunks N]\n"
               "                       [--log-level <level>] [--metrics-out <file>]\n");
  return 2;
}

constexpr LeakScenario kAllScenarios[kNumLeakScenarios] = {
    LeakScenario::kAnnounceAll,           LeakScenario::kAnnounceAllLockT1,
    LeakScenario::kAnnounceAllLockT1T2,   LeakScenario::kAnnounceAllLockGlobal,
    LeakScenario::kAnnounceHierarchyOnly,
};

void PrintSeries(const char* label, std::vector<double> f) {
  double mean =
      f.empty() ? 0.0
                : std::accumulate(f.begin(), f.end(), 0.0) / static_cast<double>(f.size());
  std::printf("%s mean %.2f%%  median %.2f%%  p90 %.2f%%  p99 %.2f%%  max %.2f%%\n", label,
              100 * mean, 100 * Quantile(f, 0.5), 100 * Quantile(f, 0.9),
              100 * Quantile(f, 0.99), 100 * Quantile(f, 1.0));
}

void WarnUnderCollected(AsId victim, Asn asn, LeakScenario scenario, std::size_t collected,
                        std::size_t requested, std::size_t attempts) {
  std::fprintf(stderr,
               "warning: victim AS%llu scenario \"%s\": only %zu of %zu trials collected "
               "(%zu draws attempted); reported percentiles cover fewer trials than "
               "requested\n",
               static_cast<unsigned long long>(asn), ToString(scenario), collected, requested,
               attempts);
  (void)victim;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stem;
  std::string out;
  std::string metrics_out;
  std::optional<std::uint64_t> victim_asn;
  std::size_t trials = 500;
  std::size_t victims = 0;
  std::uint64_t seed = 1;
  LeakScenario scenario = LeakScenario::kAnnounceAll;
  bool hierarchy_only = false;
  bool campaign = false;
  bool use_users = false;
  PeerLockMode mode = PeerLockMode::kFull;
  leaksim::LeakCampaignOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    auto next_u64 = [&](std::uint64_t* value) {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return false;
      *value = *parsed;
      return true;
    };
    std::uint64_t value = 0;
    if (arg == "--log-level") {
      const char* v = next();
      auto level = v ? obs::ParseLogLevel(v) : std::nullopt;
      if (!level) return Usage();
      obs::SetLogLevel(*level);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage();
      metrics_out = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return Usage();
      out = v;
    } else if (arg == "--victim") {
      if (!next_u64(&value)) return Usage();
      victim_asn = value;
    } else if (arg == "--victims") {
      if (!next_u64(&value) || value == 0) return Usage();
      victims = static_cast<std::size_t>(value);
    } else if (arg == "--trials") {
      if (!next_u64(&value)) return Usage();
      trials = static_cast<std::size_t>(value);
    } else if (arg == "--seed") {
      if (!next_u64(&value)) return Usage();
      seed = value;
    } else if (arg == "--threads") {
      if (!next_u64(&value)) return Usage();
      options.threads = value;
    } else if (arg == "--chunk") {
      if (!next_u64(&value) || value == 0) return Usage();
      options.chunk_trials = static_cast<std::uint32_t>(value);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--throttle-chunk-ms") {
      if (!next_u64(&value)) return Usage();
      options.throttle_chunk_ms = static_cast<std::uint32_t>(value);
    } else if (arg == "--max-chunks") {
      if (!next_u64(&value)) return Usage();
      options.max_chunks = static_cast<std::uint32_t>(value);
    } else if (arg == "--campaign") {
      campaign = true;
    } else if (arg == "--users") {
      use_users = true;
    } else if (arg == "--lock") {
      const char* v = next();
      std::string lock = v ? v : "";
      if (lock == "none") {
        scenario = LeakScenario::kAnnounceAll;
      } else if (lock == "t1") {
        scenario = LeakScenario::kAnnounceAllLockT1;
      } else if (lock == "t1t2") {
        scenario = LeakScenario::kAnnounceAllLockT1T2;
      } else if (lock == "global") {
        scenario = LeakScenario::kAnnounceAllLockGlobal;
      } else {
        return Usage();
      }
    } else if (arg == "--hierarchy-only") {
      hierarchy_only = true;
    } else if (arg == "--pre-erratum") {
      mode = PeerLockMode::kDirectOnly;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      stem = arg;
    }
  }
  if (stem.empty()) return Usage();
  if (!campaign && !victim_asn.has_value()) {
    std::fprintf(stderr, "flatnet_leaksim: --victim is required (or use --campaign)\n");
    return Usage();
  }
  if (victim_asn.has_value() && *victim_asn == 0) {
    // ASN 0 is reserved (RFC 7607) and never appears in a topology; the
    // old flag parser used it as a "flag missing" sentinel and reported a
    // confusing lookup failure instead.
    std::fprintf(stderr, "flatnet_leaksim: ASN 0 is reserved and cannot be a victim\n");
    return 2;
  }
  if (campaign && victims == 0 && !victim_asn.has_value()) victims = 5;
  if (hierarchy_only) scenario = LeakScenario::kAnnounceHierarchyOnly;

  obs::RegisterCoreMetrics();
  obs::InstallCrashHandlerFromEnv();
  // Republishes --metrics-out on the FLATNET_METRICS_INTERVAL cadence so a
  // collector can watch a long campaign live; no-op when either is unset.
  obs::MetricsFlusher flusher(metrics_out, obs::MetricsFlusher::IntervalFromEnv());

  auto finish = [&](int code) {
    if (!metrics_out.empty()) obs::WriteMetricsFile(metrics_out);
    return code;
  };

  try {
    Internet internet = LoadInternetAuto(stem);

    auto lookup = [&](std::uint64_t asn) {
      auto id = internet.graph().IdOf(static_cast<Asn>(asn));
      if (!id) {
        throw Error(StrFormat("AS%llu not present in the topology",
                              static_cast<unsigned long long>(asn)));
      }
      return *id;
    };

    if (!campaign) {
      AsId victim = lookup(*victim_asn);
      LeakTrialSeries series =
          RunLeakScenario(internet, victim, scenario, trials, seed, nullptr, mode);
      std::printf("victim AS%llu (%s), scenario: %s%s, %zu trials\n",
                  static_cast<unsigned long long>(*victim_asn),
                  internet.NameOf(victim).c_str(), ToString(scenario),
                  mode == PeerLockMode::kDirectOnly ? " [pre-erratum]" : "",
                  series.collected());
      if (series.UnderCollected()) {
        WarnUnderCollected(victim, static_cast<Asn>(*victim_asn), scenario,
                           series.collected(), series.trials_requested, series.attempts);
      }
      if (series.collected() == 0) {
        if (series.trials_requested == 0) {
          std::printf("ASes detoured: no trials requested\n");
          return finish(0);
        }
        std::fprintf(stderr,
                     "no valid leak trials collected in %zu draws (every drawn AS lacked a "
                     "route to the victim)\n",
                     series.attempts);
        return finish(1);
      }
      PrintSeries("ASes detoured:", series.fraction_ases_detoured);
      return finish(0);
    }

    // Campaign mode: victims x all scenarios. The master seed drives both
    // the victim draw and each cell's trial seed, so a campaign is fully
    // reproducible from (topology, seed, victims, trials).
    std::size_t n = internet.num_ases();
    Rng master(seed);
    std::vector<AsId> victim_ids;
    if (victim_asn.has_value()) {
      victim_ids.push_back(lookup(*victim_asn));
    } else {
      for (std::uint32_t id : master.SampleWithoutReplacement(
               static_cast<std::uint32_t>(n),
               static_cast<std::uint32_t>(std::min(victims, n)))) {
        victim_ids.push_back(static_cast<AsId>(id));
      }
    }

    std::vector<leaksim::LeakCellSpec> cells;
    cells.reserve(victim_ids.size() * kNumLeakScenarios);
    for (AsId victim : victim_ids) {
      for (LeakScenario s : kAllScenarios) {
        leaksim::LeakCellSpec spec;
        spec.victim = victim;
        spec.scenario = s;
        spec.lock_mode = mode;
        spec.seed = master.NextU64();  // == Rng::Fork per cell
        spec.trials = static_cast<std::uint32_t>(trials);
        cells.push_back(spec);
      }
    }

    std::vector<double> users;
    if (use_users) {
      users.resize(n);
      for (AsId id = 0; id < n; ++id) users[id] = internet.metadata().Get(id).users;
      options.users = &users;
    }
    if (out.empty()) out = stem + ".leak";
    options.journal_path = out + ".journal";

    std::fprintf(stderr, "topology: %zu ASes, %zu relationships; campaign: %zu cells\n", n,
                 internet.graph().num_edges(), cells.size());

    leaksim::LeakCampaignStats stats;
    leaksim::LeakTable table = leaksim::RunLeakCampaign(internet, cells, options, &stats);
    std::fprintf(stderr,
                 "campaign: %zu/%zu chunks computed (%zu resumed), %zu trials in %.2fs "
                 "(%.0f trials/s)\n",
                 stats.chunks_computed, stats.chunks_total, stats.chunks_resumed,
                 stats.trials_evaluated, stats.seconds,
                 stats.seconds > 0 ? static_cast<double>(stats.trials_evaluated) / stats.seconds
                                   : 0.0);
    if (!stats.complete) {
      // A --max-chunks run leaves the journal in place so the next
      // --resume invocation picks up where this one stopped.
      std::fprintf(stderr, "partial run (--max-chunks): journal kept at %s, no store written\n",
                   options.journal_path.c_str());
      return finish(0);
    }

    for (const leaksim::LeakCellResult& cell : table.cells) {
      Asn asn = internet.graph().AsnOf(cell.spec.victim);
      if (cell.UnderCollected()) {
        WarnUnderCollected(cell.spec.victim, asn, cell.spec.scenario, cell.collected(),
                           cell.spec.trials, cell.attempts);
      }
      std::string label =
          StrFormat("AS%llu %-36s", static_cast<unsigned long long>(asn),
                    ToString(cell.spec.scenario));
      PrintSeries(label.c_str(), cell.fraction_ases);
    }
    leaksim::FinalizeLeakStore(out, table, options.journal_path);
    std::printf("wrote %s\n", out.c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "flatnet_leaksim: %s\n", e.what());
    return finish(1);
  }
  return finish(0);
}
