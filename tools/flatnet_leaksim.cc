// flatnet_leaksim: route-leak resilience analysis from on-disk topology
// files (the §8 simulations as a command-line tool).
//
// Usage: flatnet_leaksim <stem> --victim <asn> [--trials N] [--seed S]
//        [--lock none|t1|t1t2|global] [--hierarchy-only] [--pre-erratum]
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>

#include "core/leak_scenarios.h"
#include "core/serialize.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "util/strings.h"

using namespace flatnet;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flatnet_leaksim <stem> --victim <asn> [--trials N] [--seed S]\n"
               "                       [--lock none|t1|t1t2|global] [--hierarchy-only]\n"
               "                       [--pre-erratum] [--log-level <level>]\n"
               "                       [--metrics-out <file>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stem;
  std::string metrics_out;
  std::uint64_t victim_asn = 0;
  std::size_t trials = 500;
  std::uint64_t seed = 1;
  LeakScenario scenario = LeakScenario::kAnnounceAll;
  bool hierarchy_only = false;
  PeerLockMode mode = PeerLockMode::kFull;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--log-level") {
      const char* v = next();
      auto level = v ? obs::ParseLogLevel(v) : std::nullopt;
      if (!level) return Usage();
      obs::SetLogLevel(*level);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage();
      metrics_out = v;
    } else if (arg == "--victim") {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return Usage();
      victim_asn = *parsed;
    } else if (arg == "--trials") {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return Usage();
      trials = static_cast<std::size_t>(*parsed);
    } else if (arg == "--seed") {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return Usage();
      seed = *parsed;
    } else if (arg == "--lock") {
      const char* v = next();
      std::string lock = v ? v : "";
      if (lock == "none") {
        scenario = LeakScenario::kAnnounceAll;
      } else if (lock == "t1") {
        scenario = LeakScenario::kAnnounceAllLockT1;
      } else if (lock == "t1t2") {
        scenario = LeakScenario::kAnnounceAllLockT1T2;
      } else if (lock == "global") {
        scenario = LeakScenario::kAnnounceAllLockGlobal;
      } else {
        return Usage();
      }
    } else if (arg == "--hierarchy-only") {
      hierarchy_only = true;
    } else if (arg == "--pre-erratum") {
      mode = PeerLockMode::kDirectOnly;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      stem = arg;
    }
  }
  if (stem.empty() || victim_asn == 0) return Usage();
  if (hierarchy_only) scenario = LeakScenario::kAnnounceHierarchyOnly;

  auto finish = [&](int code) {
    if (!metrics_out.empty()) obs::WriteMetricsFile(metrics_out);
    return code;
  };

  Internet internet = LoadInternet(stem);
  auto victim = internet.graph().IdOf(static_cast<Asn>(victim_asn));
  if (!victim) {
    std::fprintf(stderr, "AS%llu not present in the topology\n",
                 static_cast<unsigned long long>(victim_asn));
    return finish(1);
  }

  LeakTrialSeries series = RunLeakScenario(internet, *victim, scenario, trials, seed,
                                           nullptr, mode);
  std::vector<double> f = series.fraction_ases_detoured;
  if (f.empty()) {
    std::fprintf(stderr, "no valid leak trials (victim unreachable?)\n");
    return finish(1);
  }
  std::sort(f.begin(), f.end());
  double mean = std::accumulate(f.begin(), f.end(), 0.0) / static_cast<double>(f.size());
  auto q = [&](double p) { return f[static_cast<std::size_t>(p * (f.size() - 1))]; };

  std::printf("victim AS%llu (%s), scenario: %s%s, %zu trials\n",
              static_cast<unsigned long long>(victim_asn), internet.NameOf(*victim).c_str(),
              ToString(scenario), mode == PeerLockMode::kDirectOnly ? " [pre-erratum]" : "",
              f.size());
  std::printf("ASes detoured: mean %.2f%%  median %.2f%%  p90 %.2f%%  p99 %.2f%%  max %.2f%%\n",
              100 * mean, 100 * q(0.5), 100 * q(0.9), 100 * q(0.99), 100 * f.back());
  return finish(0);
}
