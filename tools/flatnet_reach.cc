// flatnet_reach: compute the paper's reachability metrics from on-disk
// topology files.
//
// Usage:
//   flatnet_reach <stem> --asn <asn>        one origin's three metrics
//   flatnet_reach <stem> --top N            top-N by hierarchy-free reach
//                 [--threads N]             sweep parallelism (0 = all cores)
//
// <stem> names a pair written by flatnet_gen / SaveInternet
// (<stem>.as-rel.txt + <stem>.meta.tsv). For raw CAIDA files without a
// metadata sidecar, use --rel <file> instead; tiers are then inferred from
// graph structure.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "asgraph/caida.h"
#include "asgraph/tiers.h"
#include "core/reachability_analysis.h"
#include "core/graph_store.h"
#include "core/serialize.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "sweep/engine.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flatnet_reach (<stem> | --rel <caida-file>) (--asn <asn> | --top N)\n"
               "                     [--threads N]\n"
               "                     [--log-level trace|debug|info|warn|error|off]\n"
               "                     [--metrics-out <file>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stem;
  std::string rel_file;
  std::string metrics_out;
  std::uint64_t asn = 0;
  std::uint64_t top = 0;
  std::uint64_t threads = 0;  // 0 = hardware concurrency

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--rel") {
      const char* v = next();
      if (!v) return Usage();
      rel_file = v;
    } else if (arg == "--log-level") {
      const char* v = next();
      auto level = v ? obs::ParseLogLevel(v) : std::nullopt;
      if (!level) return Usage();
      obs::SetLogLevel(*level);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage();
      metrics_out = v;
    } else if (arg == "--asn") {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return Usage();
      asn = *parsed;
    } else if (arg == "--top") {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return Usage();
      top = *parsed;
    } else if (arg == "--threads") {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return Usage();
      threads = *parsed;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      stem = arg;
    }
  }
  if ((stem.empty() == rel_file.empty()) || (asn == 0 && top == 0)) return Usage();

  auto finish = [&](int code) {
    if (!metrics_out.empty()) obs::WriteMetricsFile(metrics_out);
    return code;
  };

  Internet internet;
  if (!stem.empty()) {
    internet = LoadInternetAuto(stem);
  } else {
    AsGraph graph = LoadCaidaFile(rel_file);
    TierSets tiers = InferTierSets(graph);
    AsMetadata metadata(graph.num_ases());
    std::fprintf(stderr, "inferred %zu Tier-1s and %zu Tier-2s from graph structure\n",
                 tiers.tier1.size(), tiers.tier2.size());
    internet = Internet(std::move(graph), std::move(tiers), std::move(metadata));
  }
  std::fprintf(stderr, "topology: %zu ASes, %zu relationships\n", internet.num_ases(),
               internet.graph().num_edges());

  if (asn != 0) {
    auto id = internet.graph().IdOf(static_cast<Asn>(asn));
    if (!id) {
      std::fprintf(stderr, "AS%llu not present in the topology\n",
                   static_cast<unsigned long long>(asn));
      return finish(1);
    }
    ReachabilitySummary r = AnalyzeReachability(internet, *id);
    double denom = static_cast<double>(internet.num_ases() - 1);
    std::printf("AS%llu%s%s\n", static_cast<unsigned long long>(asn),
                internet.NameOf(*id).empty() ? "" : " — ", internet.NameOf(*id).c_str());
    std::printf("  provider-free  reach(o, I\\Po):        %s (%.1f%%)\n",
                WithCommas(r.provider_free).c_str(), 100 * r.provider_free / denom);
    std::printf("  Tier-1-free    reach(o, I\\Po\\T1):     %s (%.1f%%)\n",
                WithCommas(r.tier1_free).c_str(), 100 * r.tier1_free / denom);
    std::printf("  hierarchy-free reach(o, I\\Po\\T1\\T2):  %s (%.1f%%)\n",
                WithCommas(r.hierarchy_free).c_str(), 100 * r.hierarchy_free / denom);
    return finish(0);
  }

  // The sharded engine returns element-identical results to the serial
  // HierarchyFreeSweep at any thread count, so the table below is
  // byte-identical to the pre-sweep-engine output.
  std::vector<std::uint32_t> sweep =
      sweep::ParallelHierarchyFreeSweep(internet, static_cast<std::size_t>(threads));
  std::vector<AsId> order(internet.num_ases());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](AsId a, AsId b) { return sweep[a] > sweep[b]; });
  TextTable table;
  table.AddColumn("#", TextTable::Align::kRight);
  table.AddColumn("ASN", TextTable::Align::kRight);
  table.AddColumn("name");
  table.AddColumn("hierarchy-free", TextTable::Align::kRight);
  for (std::size_t i = 0; i < top && i < order.size(); ++i) {
    AsId id = order[i];
    table.AddRow({std::to_string(i + 1), std::to_string(internet.graph().AsnOf(id)),
                  internet.NameOf(id), WithCommas(sweep[id])});
  }
  table.Print(stdout);
  return finish(0);
}
