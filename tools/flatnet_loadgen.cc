// flatnet_loadgen: closed-loop load generator and checker for flatnet_serve.
//
// Opens N connections, sweeps a randomized mix of reach / reliance / leak /
// status queries over origins sampled from the topology (a small hot set is
// revisited so the server's result cache sees repeats), and reports p50 /
// p95 / p99 latency, throughput, error rate, and cache-hit rate as one JSON
// object on stdout. A single preflight `status` probe builds a capability
// map: `top` joins the mix only when the server reports a loaded sweep
// store, and `hegemony` / `failure` join only when it reports a loaded fail
// store (their origins and scenarios come from the store's advertisement,
// so every query hits a real cell). Ops the server cannot answer are listed
// under `skipped_ops` in the report instead of surfacing as counted errors.
//
// Requests carry `"timing":true` (disable with --no-timing), so every ok
// response returns the server's phase timeline. The report's `attribution`
// object splits mean latency into server-side groups — queue wait, cache
// probe, propagation, serialization, other — plus the client-side residual
// (RTT + loadgen overhead = measured latency minus server_ms), answering
// "where did the milliseconds go" without any server-side log digging.
//
// --verify K additionally cross-checks K reach queries: each is issued
// twice (cold, then cached) and the raw `result` bytes must be identical,
// the response must carry no `timing` field (the queries are sent without
// one, confirming tracing-off responses are byte-stable), a third timed
// issue of the same query must embed identical `result` bytes, and the
// reported reachable count must equal a direct local computation with the
// independent valley-free BFS engine (bgp/reachability.h) on the same
// topology — the serve path runs the phase-based RouteComputation, so this
// exercises the same cross-engine equivalence the differential oracle
// (src/check) guarantees.
//
// --fleet points the loadgen at a flatnet_router instead of a single
// server: the preflight reads the router's merged fleet view, rebuilds the
// consistent-hash ring locally (same shard count and vnodes), and
// attributes every keyed request to its owning shard. The report then
// carries a `fleet` object — per-shard p50/p95/p99 from the client's
// vantage, the router's hedge counters and win rate, the number of
// partial (`partial: true`) ranking answers observed, and how many
// requests came back `unavailable` (a dead owner's store slice).
// `unavailable` responses are expected while a shard is down, so in fleet
// mode they are counted separately instead of as hard errors.
//
// Usage:
//   flatnet_loadgen --topology <stem> (--port P | --port-file <file>)
//                   [--host ADDR] [--requests N] [--connections C]
//                   [--seed S] [--verify K] [--no-timing] [--fleet]
//                   [--log-level <level>]
//
// Exits nonzero on any protocol error, transport failure, or verification
// mismatch.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bgp/reachability.h"
#include "core/graph_store.h"
#include "core/serialize.h"
#include "fleet/ring.h"
#include "obs/log.h"
#include "util/error.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace flatnet;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flatnet_loadgen --topology <stem> (--port P | --port-file <file>)\n"
               "                       [--host ADDR] [--requests N] [--connections C]\n"
               "                       [--seed S] [--verify K] [--no-timing] [--fleet]\n"
               "                       [--log-level <level>]\n");
  return 2;
}

// One blocking line-oriented client connection.
class Client {
 public:
  Client(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw Error(StrFormat("socket: %s", std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      throw Error(StrFormat("invalid host '%s'", host.c_str()));
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw Error(StrFormat("connect %s:%u: %s", host.c_str(),
                            static_cast<unsigned>(port), std::strerror(errno)));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Sends one request line, blocks for the one response line.
  std::string RoundTrip(const std::string& request) {
    std::string framed = request;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) throw Error(StrFormat("send: %s", std::strerror(errno)));
      sent += static_cast<std::size_t>(n);
    }
    for (;;) {
      std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) throw Error("connection closed mid-response");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// Server-side latency attribution, accumulated from `timing` fields.
// Phases are folded into coarse groups so the report stays readable:
// queue wait, cache probe, propagation (all propagation.* phases),
// serialization (serialize + write), and other (accept/parse/setup/...).
struct Attribution {
  double queue_ms = 0.0;
  double cache_ms = 0.0;
  double propagation_ms = 0.0;
  double serialize_ms = 0.0;
  double other_ms = 0.0;
  double server_ms = 0.0;    // sum of every reported phase
  double residual_ms = 0.0;  // client latency - server_ms (RTT + overhead)
  std::uint64_t timed = 0;   // responses that carried a timing field

  void Fold(const Json& timing, double client_ms) {
    const Json& phases = timing.Get("phases");
    if (phases.type() != Json::Type::kArray) return;
    double total = 0.0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const Json& entry = phases[i];
      if (entry.Get("name").type() != Json::Type::kString ||
          entry.Get("ms").type() != Json::Type::kNumber) {
        continue;
      }
      const std::string& name = entry.Get("name").AsString();
      double ms = entry.Get("ms").AsNumber();
      total += ms;
      if (name == "queue") {
        queue_ms += ms;
      } else if (name == "cache_probe") {
        cache_ms += ms;
      } else if (name.rfind("propagation.", 0) == 0) {
        propagation_ms += ms;
      } else if (name == "serialize" || name == "write") {
        serialize_ms += ms;
      } else {
        other_ms += ms;
      }
    }
    server_ms += total;
    residual_ms += client_ms - total;
    ++timed;
  }

  void Merge(const Attribution& other) {
    queue_ms += other.queue_ms;
    cache_ms += other.cache_ms;
    propagation_ms += other.propagation_ms;
    serialize_ms += other.serialize_ms;
    other_ms += other.other_ms;
    server_ms += other.server_ms;
    residual_ms += other.residual_ms;
    timed += other.timed;
  }
};

struct WorkerTally {
  std::vector<double> latencies_ms;
  std::uint64_t ok = 0;
  std::uint64_t cached = 0;
  std::uint64_t cacheable = 0;
  std::uint64_t errors = 0;
  Attribution attribution;
  std::vector<std::string> error_samples;
  // Fleet mode: latencies bucketed by the owning shard of each keyed
  // request, plus the degraded-answer counters the report surfaces.
  std::vector<std::vector<double>> shard_latencies_ms;
  std::uint64_t partial = 0;
  std::uint64_t unavailable = 0;
};

const char* kModes[] = {"full", "provider_free", "tier1_free", "hierarchy_free"};
const char* kMetrics[] = {"provider_free", "tier1_free", "hierarchy_free"};

// What the server can answer, discovered by one preflight `status` probe.
// Ops the server cannot serve (no sweep store → top, no fail store →
// hegemony / failure) are left out of the request mix and recorded in
// `skipped` for the report, instead of being issued and counted as errors.
struct Capabilities {
  bool top = false;
  bool fail = false;
  bool fail_users = false;                  // store carries loss_users
  std::vector<Asn> fail_origins;            // advertised cell origins
  std::vector<std::string> fail_scenarios;  // advertised scenario slugs
  std::vector<std::string> skipped;         // ops absent from the mix
};

Capabilities ProbeCapabilities(const Json& status) {
  Capabilities caps;
  const Json& result = status.Get("result");
  const Json& sweep_loaded = result.Get("sweep_store").Get("loaded");
  caps.top = sweep_loaded.type() == Json::Type::kBool && sweep_loaded.AsBool();
  const Json& fail_store = result.Get("fail_store");
  const Json& fail_loaded = fail_store.Get("loaded");
  if (fail_loaded.type() == Json::Type::kBool && fail_loaded.AsBool()) {
    const Json& users = fail_store.Get("has_users");
    caps.fail_users = users.type() == Json::Type::kBool && users.AsBool();
    const Json& origins = fail_store.Get("origins");
    if (origins.type() == Json::Type::kArray) {
      for (std::size_t i = 0; i < origins.size(); ++i) {
        if (origins[i].type() == Json::Type::kNumber) {
          caps.fail_origins.push_back(static_cast<Asn>(origins[i].AsU64()));
        }
      }
    }
    const Json& scenarios = fail_store.Get("scenarios");
    if (scenarios.type() == Json::Type::kArray) {
      for (std::size_t i = 0; i < scenarios.size(); ++i) {
        if (scenarios[i].type() == Json::Type::kString) {
          caps.fail_scenarios.push_back(scenarios[i].AsString());
        }
      }
    }
    caps.fail = !caps.fail_origins.empty() && !caps.fail_scenarios.empty();
  }
  if (!caps.top) caps.skipped.push_back("top");
  if (!caps.fail) {
    caps.skipped.push_back("hegemony");
    caps.skipped.push_back("failure");
  }
  return caps;
}

// Builds one request from the mix. Base: ~55% reach, 20% reliance, 15%
// leak, 10% status. A loaded sweep store moves 10 points from reach to
// `top`; a loaded fail store moves another 10 to `hegemony` / `failure`
// (5 each), targeting the store's advertised origins and scenarios so the
// queries hit real cells. Origins come from a 16-AS hot pool 70% of the
// time so identical queries recur and the result cache gets hits. The
// store-backed ops and status are answered inline and never cached.
std::string BuildRequest(Rng& rng, const std::vector<Asn>& asns,
                         const std::vector<Asn>& hot, std::uint64_t id,
                         const Capabilities& caps, bool timing, bool* cacheable,
                         std::optional<Asn>* key_asn) {
  auto pick = [&](const std::vector<Asn>& pool) {
    return pool[rng.UniformU64(pool.size())];
  };
  auto origin = [&] { return rng.Bernoulli(0.7) ? pick(hot) : pick(asns); };
  const char* timing_key = timing ? ",\"timing\":true" : "";
  std::uint64_t roll = rng.UniformU64(100);
  *cacheable = true;
  key_asn->reset();  // set for keyed ops; scatter and status stay unkeyed
  std::uint64_t hi = 55u - (caps.top ? 10u : 0u) - (caps.fail ? 10u : 0u);
  if (roll < hi) {
    Asn o = origin();
    *key_asn = o;
    return StrFormat("{\"op\":\"reach\",\"origin\":%u,\"mode\":\"%s\",\"id\":%llu%s}", o,
                     kModes[rng.UniformU64(4)], static_cast<unsigned long long>(id),
                     timing_key);
  }
  if (roll < hi + 20u) {
    Asn o = origin();
    *key_asn = o;
    return StrFormat("{\"op\":\"reliance\",\"origin\":%u,\"k\":10,\"id\":%llu%s}", o,
                     static_cast<unsigned long long>(id), timing_key);
  }
  if (roll < hi + 35u) {
    Asn victim = origin();
    Asn leaker = origin();
    while (leaker == victim) leaker = pick(asns);
    *key_asn = victim;
    return StrFormat("{\"op\":\"leak\",\"victim\":%u,\"leaker\":%u,\"id\":%llu%s}", victim,
                     leaker, static_cast<unsigned long long>(id), timing_key);
  }
  hi += 35u;
  *cacheable = false;
  if (caps.top) {
    hi += 10u;
    if (roll < hi) {
      return StrFormat("{\"op\":\"top\",\"k\":%llu,\"metric\":\"%s\",\"id\":%llu%s}",
                       static_cast<unsigned long long>(1 + rng.UniformU64(20)),
                       kMetrics[rng.UniformU64(3)], static_cast<unsigned long long>(id),
                       timing_key);
    }
  }
  if (caps.fail) {
    hi += 5u;
    if (roll < hi) {
      Asn o = pick(caps.fail_origins);
      *key_asn = o;
      return StrFormat("{\"op\":\"hegemony\",\"origin\":%u,\"k\":%llu,\"id\":%llu%s}", o,
                       static_cast<unsigned long long>(1 + rng.UniformU64(10)),
                       static_cast<unsigned long long>(id), timing_key);
    }
    hi += 5u;
    if (roll < hi) {
      const char* column = caps.fail_users && rng.Bernoulli(0.33) ? "loss_users"
                           : rng.Bernoulli(0.5)                   ? "disconnected"
                                                                  : "loss_ases";
      Asn o = pick(caps.fail_origins);
      *key_asn = o;
      return StrFormat(
          "{\"op\":\"failure\",\"origin\":%u,\"scenario\":\"%s\",\"column\":\"%s\","
          "\"q\":[0.5,0.9],\"id\":%llu%s}",
          o, caps.fail_scenarios[rng.UniformU64(caps.fail_scenarios.size())].c_str(),
          column, static_cast<unsigned long long>(id), timing_key);
    }
  }
  return StrFormat("{\"op\":\"status\",\"id\":%llu%s}", static_cast<unsigned long long>(id),
                   timing_key);
}

// The raw `result` bytes of an ok response: from the `result` key to the
// closing brace, or to the `timing` field a timed response appends after
// it. Comparing these checks byte-identity between cold, cached, and timed
// replies without reserializing.
std::string_view RawResultBytes(const std::string& response) {
  std::size_t at = response.find("\"result\":");
  if (at == std::string::npos) return {};
  std::string_view bytes = std::string_view(response).substr(at);
  std::size_t timing = bytes.rfind(",\"timing\":");
  if (timing != std::string_view::npos) return bytes.substr(0, timing);
  if (!bytes.empty() && bytes.back() == '}') bytes.remove_suffix(1);
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stem;
  std::string host = "127.0.0.1";
  std::uint64_t port = 0;
  std::string port_file;
  std::uint64_t requests = 200;
  std::uint64_t connections = 4;
  std::uint64_t seed = 1;
  std::uint64_t verify = 1;
  bool timing = true;
  bool fleet_mode = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    auto next_u64 = [&](std::uint64_t* out) {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return false;
      *out = *parsed;
      return true;
    };
    if (arg == "--topology") {
      const char* v = next();
      if (!v) return Usage();
      stem = v;
    } else if (arg == "--host") {
      const char* v = next();
      if (!v) return Usage();
      host = v;
    } else if (arg == "--port") {
      if (!next_u64(&port) || port == 0 || port > 65535) return Usage();
    } else if (arg == "--port-file") {
      const char* v = next();
      if (!v) return Usage();
      port_file = v;
    } else if (arg == "--requests") {
      if (!next_u64(&requests) || requests == 0) return Usage();
    } else if (arg == "--connections") {
      if (!next_u64(&connections) || connections == 0) return Usage();
    } else if (arg == "--seed") {
      if (!next_u64(&seed)) return Usage();
    } else if (arg == "--verify") {
      if (!next_u64(&verify)) return Usage();
    } else if (arg == "--no-timing") {
      timing = false;
    } else if (arg == "--fleet") {
      fleet_mode = true;
    } else if (arg == "--log-level") {
      const char* v = next();
      auto level = v ? obs::ParseLogLevel(v) : std::nullopt;
      if (!level) return Usage();
      obs::SetLogLevel(*level);
    } else {
      return Usage();
    }
  }
  if (stem.empty() || (port == 0) == port_file.empty()) return Usage();
  if (!port_file.empty()) {
    std::ifstream in(port_file);
    if (!(in >> port) || port == 0 || port > 65535) {
      std::fprintf(stderr, "cannot read port from %s\n", port_file.c_str());
      return 1;
    }
  }

  Internet internet = LoadInternetAuto(stem);
  std::vector<Asn> asns;
  asns.reserve(internet.num_ases());
  for (AsId id = 0; id < internet.num_ases(); ++id) {
    asns.push_back(internet.graph().AsnOf(id));
  }
  if (asns.size() < 2) {
    std::fprintf(stderr, "topology too small to generate load\n");
    return 1;
  }
  Rng pool_rng(seed);
  std::vector<Asn> hot;
  for (std::size_t i = 0; i < 16; ++i) hot.push_back(asns[pool_rng.UniformU64(asns.size())]);

  // Preflight status probe: one capability map decides which store-backed
  // ops join the mix, so the loadgen works against servers started with
  // any combination of stores.
  Capabilities caps;
  std::optional<fleet::Ring> ring;
  try {
    Client probe(host, static_cast<std::uint16_t>(port));
    Json status = Json::Parse(probe.RoundTrip("{\"op\":\"status\",\"id\":\"probe\"}"));
    caps = ProbeCapabilities(status);
    if (fleet_mode) {
      // Rebuild the router's ring locally (same shard count and vnodes →
      // identical ownership) so each keyed request can be attributed to
      // the shard that served it.
      const Json& ring_config = status.Get("result").Get("fleet").Get("ring");
      if (ring_config.type() != Json::Type::kObject) {
        std::fprintf(stderr, "--fleet: %s:%u is not a flatnet_router (no fleet view)\n",
                     host.c_str(), static_cast<unsigned>(port));
        return 1;
      }
      ring.emplace(ring_config.At("shards").AsU64(), ring_config.At("vnodes").AsU64());
      std::fprintf(stderr, "fleet: %llu shards, %llu vnodes each\n",
                   static_cast<unsigned long long>(ring->num_shards()),
                   static_cast<unsigned long long>(ring->vnodes()));
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "status probe failed: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "sweep store %s: top queries %s\n", caps.top ? "loaded" : "absent",
               caps.top ? "in the mix" : "skipped");
  std::fprintf(stderr, "fail store %s: hegemony/failure queries %s\n",
               caps.fail ? "loaded" : "absent", caps.fail ? "in the mix" : "skipped");

  std::atomic<std::uint64_t> next_id{0};
  std::vector<WorkerTally> tallies(connections);
  std::mutex fail_mu;
  std::string transport_failure;

  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (std::uint64_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerTally& tally = tallies[w];
      if (ring) tally.shard_latencies_ms.resize(ring->num_shards());
      try {
        Client client(host, static_cast<std::uint16_t>(port));
        Rng rng(seed * 0x9e3779b97f4a7c15ULL + w + 1);
        for (;;) {
          std::uint64_t id = next_id.fetch_add(1);
          if (id >= requests) break;
          bool cacheable = false;
          std::optional<Asn> key_asn;
          std::string request =
              BuildRequest(rng, asns, hot, id, caps, timing, &cacheable, &key_asn);
          auto start = std::chrono::steady_clock::now();
          std::string response = client.RoundTrip(request);
          double client_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
          tally.latencies_ms.push_back(client_ms);
          if (ring && key_asn) {
            tally.shard_latencies_ms[ring->Owner(*key_asn)].push_back(client_ms);
          }
          Json doc = Json::Parse(response);
          if (doc.Get("ok").type() == Json::Type::kBool && doc.Get("ok").AsBool()) {
            ++tally.ok;
            const Json& partial = doc.Get("result").Get("partial");
            if (partial.type() == Json::Type::kBool && partial.AsBool()) ++tally.partial;
            if (doc.Get("timing").type() == Json::Type::kObject) {
              tally.attribution.Fold(doc.Get("timing"), client_ms);
            }
            if (cacheable) {
              ++tally.cacheable;
              if (doc.Get("cached").type() == Json::Type::kBool &&
                  doc.Get("cached").AsBool()) {
                ++tally.cached;
              }
            }
          } else if (fleet_mode && doc.Get("error").Get("code").type() ==
                                       Json::Type::kString &&
                     doc.Get("error").Get("code").AsString() == "unavailable") {
            // A dead owner's store slice: expected while a shard is down, so
            // it degrades the fleet report instead of failing the run.
            ++tally.unavailable;
          } else {
            ++tally.errors;
            if (tally.error_samples.size() < 3) tally.error_samples.push_back(response);
          }
        }
      } catch (const Error& e) {
        std::lock_guard<std::mutex> lock(fail_mu);
        if (transport_failure.empty()) transport_failure = e.what();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (!transport_failure.empty()) {
    std::fprintf(stderr, "transport failure: %s\n", transport_failure.c_str());
    return 1;
  }

  std::vector<double> latencies;
  std::uint64_t ok = 0, cached = 0, cacheable = 0, errors = 0;
  std::uint64_t partial = 0, unavailable = 0;
  std::vector<std::vector<double>> shard_latencies(ring ? ring->num_shards() : 0);
  Attribution attribution;
  for (const WorkerTally& tally : tallies) {
    latencies.insert(latencies.end(), tally.latencies_ms.begin(), tally.latencies_ms.end());
    ok += tally.ok;
    cached += tally.cached;
    cacheable += tally.cacheable;
    errors += tally.errors;
    partial += tally.partial;
    unavailable += tally.unavailable;
    for (std::size_t s = 0; s < tally.shard_latencies_ms.size(); ++s) {
      shard_latencies[s].insert(shard_latencies[s].end(),
                                tally.shard_latencies_ms[s].begin(),
                                tally.shard_latencies_ms[s].end());
    }
    attribution.Merge(tally.attribution);
    for (const std::string& sample : tally.error_samples) {
      std::fprintf(stderr, "error response: %s\n", sample.c_str());
    }
  }

  // Verification pass: cold-vs-cached byte identity plus an independent
  // local recomputation for `verify` hierarchy-free reach queries.
  std::uint64_t verify_checked = 0;
  std::uint64_t verify_mismatches = 0;
  if (verify > 0) {
    try {
      Client client(host, static_cast<std::uint16_t>(port));
      ReachabilityEngine engine(internet.graph());
      Rng rng(seed ^ 0x5eedULL);
      for (std::uint64_t i = 0; i < verify; ++i) {
        Asn origin_asn = asns[rng.UniformU64(asns.size())];
        AsId origin = *internet.graph().IdOf(origin_asn);
        std::string request = StrFormat(
            "{\"op\":\"reach\",\"origin\":%u,\"mode\":\"hierarchy_free\",\"id\":\"v%llu\"}",
            origin_asn, static_cast<unsigned long long>(i));
        std::string cold = client.RoundTrip(request);
        std::string warm = client.RoundTrip(request);
        // The same query with timing must return identical result bytes —
        // tracing never perturbs the payload, only appends to it.
        std::string timed = client.RoundTrip(
            request.substr(0, request.size() - 1) + ",\"timing\":true}");
        ++verify_checked;
        Json cold_doc = Json::Parse(cold);
        Json warm_doc = Json::Parse(warm);
        Json timed_doc = Json::Parse(timed);
        bool ok_pair = cold_doc.Get("ok").type() == Json::Type::kBool &&
                       cold_doc.Get("ok").AsBool() &&
                       warm_doc.Get("ok").type() == Json::Type::kBool &&
                       warm_doc.Get("ok").AsBool();
        bool bytes_equal = RawResultBytes(cold) == RawResultBytes(warm);
        bool warm_from_cache = ok_pair && warm_doc.Get("cached").AsBool();
        // Untimed responses must not grow a timing field; the timed issue
        // must carry one and embed the same result bytes.
        bool timing_clean = !cold_doc.Contains("timing") && !warm_doc.Contains("timing") &&
                            timed_doc.Get("timing").type() == Json::Type::kObject &&
                            RawResultBytes(timed) == RawResultBytes(cold);
        bool count_matches = false;
        if (ok_pair) {
          Bitset excluded = internet.HierarchyFreeExclusion(origin);
          std::size_t local = ReachableCount(internet.graph(), origin, &excluded);
          count_matches =
              cold_doc.Get("result").Get("reachable").AsU64() == local;
        }
        if (!(ok_pair && bytes_equal && warm_from_cache && timing_clean && count_matches)) {
          ++verify_mismatches;
          std::fprintf(stderr,
                       "verify mismatch for AS%u: ok=%d bytes_equal=%d cached=%d "
                       "timing_clean=%d count_matches=%d\n  cold: %s\n  warm: %s\n",
                       origin_asn, ok_pair, bytes_equal, warm_from_cache, timing_clean,
                       count_matches, cold.c_str(), warm.c_str());
        }
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "verify failure: %s\n", e.what());
      ++verify_mismatches;
    }
  }

  Json report = Json::MakeObject();
  if (ring) {
    // One post-run status round-trip: the router's hedge counters cover
    // this run (plus its own probes, which never hedge).
    Json fleet = Json::MakeObject();
    fleet["partial_answers"] = partial;
    fleet["unavailable"] = unavailable;
    try {
      Client probe(host, static_cast<std::uint16_t>(port));
      Json status = Json::Parse(probe.RoundTrip("{\"op\":\"status\",\"id\":\"post\"}"));
      const Json& counters = status.Get("result").Get("fleet");
      std::uint64_t issued = counters.Get("hedge_issued").type() == Json::Type::kNumber
                                 ? counters.At("hedge_issued").AsU64()
                                 : 0;
      std::uint64_t won = counters.Get("hedge_won").type() == Json::Type::kNumber
                              ? counters.At("hedge_won").AsU64()
                              : 0;
      fleet["hedge_issued"] = issued;
      fleet["hedge_win_rate"] =
          issued > 0 ? static_cast<double>(won) / static_cast<double>(issued) : 0.0;
      fleet["hedge_won"] = won;
      fleet["shards_alive"] = counters.Get("alive");
    } catch (const Error& e) {
      std::fprintf(stderr, "post-run fleet status failed: %s\n", e.what());
    }
    Json per_shard = Json::MakeArray();
    for (std::size_t s = 0; s < shard_latencies.size(); ++s) {
      Json entry = Json::MakeObject();
      entry["requests"] = static_cast<std::uint64_t>(shard_latencies[s].size());
      entry["shard"] = static_cast<std::uint64_t>(s);
      if (!shard_latencies[s].empty()) {
        EmpiricalCdf cdf(shard_latencies[s]);
        entry["p50_ms"] = cdf.Quantile(0.50);
        entry["p95_ms"] = cdf.Quantile(0.95);
        entry["p99_ms"] = cdf.Quantile(0.99);
      }
      per_shard.Append(std::move(entry));
    }
    fleet["per_shard"] = std::move(per_shard);
    report["fleet"] = std::move(fleet);
  }
  if (attribution.timed > 0) {
    // Mean milliseconds per timed request, by server-side phase group,
    // plus what the server never saw (network + client overhead).
    double n = static_cast<double>(attribution.timed);
    Json attr = Json::MakeObject();
    attr["cache_ms"] = attribution.cache_ms / n;
    attr["other_ms"] = attribution.other_ms / n;
    attr["propagation_ms"] = attribution.propagation_ms / n;
    attr["queue_ms"] = attribution.queue_ms / n;
    attr["residual_ms"] = attribution.residual_ms / n;
    attr["serialize_ms"] = attribution.serialize_ms / n;
    attr["server_ms"] = attribution.server_ms / n;
    attr["timed"] = attribution.timed;
    report["attribution"] = std::move(attr);
  }
  report["cache_hit_rate"] =
      cacheable > 0 ? static_cast<double>(cached) / static_cast<double>(cacheable) : 0.0;
  report["cacheable"] = cacheable;
  report["errors"] = errors;
  report["ok"] = ok;
  if (!latencies.empty()) {
    EmpiricalCdf cdf(latencies);
    report["p50_ms"] = cdf.Quantile(0.50);
    report["p95_ms"] = cdf.Quantile(0.95);
    report["p99_ms"] = cdf.Quantile(0.99);
  }
  report["requests"] = requests;
  report["seconds"] = seconds;
  Json skipped_ops = Json::MakeArray();
  for (const std::string& op : caps.skipped) skipped_ops.Append(Json(op));
  report["skipped_ops"] = std::move(skipped_ops);
  report["throughput_qps"] =
      seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  report["verify_checked"] = verify_checked;
  report["verify_mismatches"] = verify_mismatches;
  std::printf("%s\n", report.Dump().c_str());
  return (errors == 0 && verify_mismatches == 0) ? 0 : 1;
}
