// flatnet_sweep: all-origins batch sweep with checkpoint/resume.
//
// Computes the paper's per-origin reachability metrics for every AS in an
// on-disk topology and publishes them as a columnar `.sweep` store that
// flatnet_serve (`top` op) and flatnet_reach answer from in microseconds.
//
// Usage:
//   flatnet_sweep <stem> [--out <file>] [--threads N] [--chunk N]
//                 [--columns reach|all] [--resume]
//                 [--throttle-chunk-ms MS] [--max-chunks N]
//                 [--log-level <level>] [--metrics-out <file>]
//
// <stem> names a pair written by flatnet_gen / SaveInternet. The store
// defaults to <stem>.sweep; completed chunks are journaled to
// <out>.journal as the sweep runs, so a killed run restarted with
// --resume recomputes only the missing chunks and produces a
// byte-identical store. The journal is removed once the store publishes.
//
// --throttle-chunk-ms and --max-chunks are test hooks (slow the sweep so
// a kill can land mid-run / stop after N chunks); production runs leave
// them unset.
#include <cstdio>
#include <string>

#include "core/graph_store.h"
#include "core/serialize.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sweep/engine.h"
#include "util/error.h"
#include "util/strings.h"

using namespace flatnet;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flatnet_sweep <stem> [--out <file>] [--threads N] [--chunk N]\n"
               "                     [--columns reach|all] [--resume]\n"
               "                     [--throttle-chunk-ms MS] [--max-chunks N]\n"
               "                     [--log-level trace|debug|info|warn|error|off]\n"
               "                     [--metrics-out <file>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stem;
  std::string out;
  std::string metrics_out;
  sweep::SweepOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    auto next_u64 = [&](std::uint64_t* value) {
      const char* v = next();
      auto parsed = v ? ParseU64(v) : std::nullopt;
      if (!parsed) return false;
      *value = *parsed;
      return true;
    };
    std::uint64_t value = 0;
    if (arg == "--out") {
      const char* v = next();
      if (!v) return Usage();
      out = v;
    } else if (arg == "--threads") {
      if (!next_u64(&value)) return Usage();
      options.threads = value;
    } else if (arg == "--chunk") {
      if (!next_u64(&value) || value == 0) return Usage();
      options.chunk_size = static_cast<std::uint32_t>(value);
    } else if (arg == "--columns") {
      const char* v = next();
      if (!v) return Usage();
      std::string which = v;
      if (which == "reach") {
        options.columns = sweep::kReachColumns;
      } else if (which == "all") {
        options.columns = sweep::kReachColumns | sweep::kPathColumns;
      } else {
        return Usage();
      }
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--throttle-chunk-ms") {
      if (!next_u64(&value)) return Usage();
      options.throttle_chunk_ms = static_cast<std::uint32_t>(value);
    } else if (arg == "--max-chunks") {
      if (!next_u64(&value)) return Usage();
      options.max_chunks = static_cast<std::uint32_t>(value);
    } else if (arg == "--log-level") {
      const char* v = next();
      auto level = v ? obs::ParseLogLevel(v) : std::nullopt;
      if (!level) return Usage();
      obs::SetLogLevel(*level);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage();
      metrics_out = v;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      stem = arg;
    }
  }
  if (stem.empty()) return Usage();
  if (out.empty()) out = stem + ".sweep";
  options.journal_path = out + ".journal";

  obs::RegisterCoreMetrics();
  obs::InstallCrashHandlerFromEnv();
  // Republishes --metrics-out on the FLATNET_METRICS_INTERVAL cadence so a
  // collector can watch a long sweep live; no-op when either is unset.
  obs::MetricsFlusher flusher(metrics_out, obs::MetricsFlusher::IntervalFromEnv());

  auto finish = [&](int code) {
    if (!metrics_out.empty()) obs::WriteMetricsFile(metrics_out);
    return code;
  };

  try {
    Internet internet = LoadInternetAuto(stem);
    std::fprintf(stderr, "topology: %zu ASes, %zu relationships\n", internet.num_ases(),
                 internet.graph().num_edges());

    sweep::SweepRunStats stats;
    sweep::SweepTable table = sweep::RunSweep(internet, options, &stats);
    std::fprintf(stderr,
                 "sweep: %zu/%zu chunks computed (%zu resumed), %zu origins in %.2fs "
                 "(%.0f origins/s)\n",
                 stats.chunks_computed, stats.chunks_total, stats.chunks_resumed,
                 stats.origins_computed, stats.seconds,
                 stats.seconds > 0 ? static_cast<double>(stats.origins_computed) / stats.seconds
                                   : 0.0);
    if (!stats.complete) {
      // A --max-chunks run leaves the journal in place so the next
      // --resume invocation picks up where this one stopped.
      std::fprintf(stderr, "partial run (--max-chunks): journal kept at %s, no store written\n",
                   options.journal_path.c_str());
      return finish(0);
    }
    sweep::FinalizeSweepStore(out, table, options.journal_path);
    std::printf("wrote %s\n", out.c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "flatnet_sweep: %s\n", e.what());
    return finish(1);
  }
  return finish(0);
}
